"""The SESQL engine: the full Fig. 6 pipeline behind one call.

``SESQLEngine.execute`` runs a SESQL query end to end:

1. the **SQP** splits the text, strips condition tags and parses both
   the SQL part and the enrichment specification;
2. the **SQM** builds one SPARQL extraction per enrichment and runs it
   on the (per-user) knowledge base;
3. WHERE enrichments rewrite the tagged conditions over temp tables
   injected next to the databank tables, and the (rewritten) SQL query
   executes on the databank;
4. the **JoinManager** combines the base result with each SELECT
   enrichment through the temporary support database, issuing the final
   SQL query that yields the enriched result.

The pipeline is factored into *resumable stages* so the session layer
(:mod:`repro.api`) can drive them independently: ``execute_parsed``
accepts a pre-parsed (prepared) query and skips the SQP, while
``extraction_plan`` / ``apply_where_rewrites`` let ``explain()`` run the
planning stages without touching the databank result.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..rdf.store import TripleStore
from ..relational.engine import Database
from ..relational.render import render_query
from ..relational.result import Cursor, ResultSet
from .ast import (BoolSchemaExtension, BoolSchemaReplacement, EnrichedQuery,
                  Enrichment, ReplaceConstant, ReplaceVariable,
                  SchemaExtension, SchemaReplacement)
from .enrichment import WhereRewriter
from .errors import EnrichmentError
from .join_manager import JoinManager
from .mapping import ResourceMapping
from .sqm import Extraction, SemanticQueryModule
from .sqp import SemanticQueryParser, clone_enriched
from .stored_queries import StoredQueryRegistry

#: Shared no-op context for disabled-telemetry span sites.
_NOOP = nullcontext()

#: The pipeline stages folded into ``repro_sesql_stage_seconds``.
_STAGES = ("parse", "where_rewrite", "sql", "combine", "total")


@dataclass
class SESQLResult:
    """The outcome of one SESQL execution, with full observability."""

    result: ResultSet
    enriched: EnrichedQuery
    base_sql: str                 # cleaned SQL as parsed
    executed_sql: str             # SQL actually run on the databank
    sparql_queries: list[str] = field(default_factory=list)
    final_sqls: list[str] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0           # memoized SPARQL extractions reused
    cache_misses: int = 0
    #: SPARQL queries actually executed on the KB for this statement.
    #: ``sparql_queries`` lists one entry per *logical* extraction;
    #: identical extractions across tagged conditions (and across the
    #: WHERE/SELECT stages) are deduped and run once, so this count can
    #: be lower than ``len(sparql_queries)``.
    sparql_executions: int = 0
    #: The databank's cost-based plan for the (rewritten) SQL stage — a
    #: :class:`repro.planner.PlannedStatement`, or ``None`` when the
    #: databank planner is disabled.  The WHERE-enrichment rewrite runs
    #: *before* planning, so enrichment-injected predicates benefit from
    #: pushdown and join re-ordering like hand-written ones.
    db_plan: object | None = None

    @property
    def rows(self) -> list[tuple]:
        return self.result.rows

    @property
    def columns(self) -> list[str]:
        return self.result.columns


class SESQLEngine:
    """Executes SESQL queries against a databank + knowledge base pair."""

    def __init__(self, databank: Database,
                 knowledge_base: TripleStore | None = None,
                 mapping: ResourceMapping | None = None,
                 stored_queries: StoredQueryRegistry | None = None,
                 include_original: bool = False,
                 join_strategy: str = "tempdb",
                 extraction_cache=None) -> None:
        self.databank = databank
        # Explicit None check: an *empty* TripleStore is falsy but must be
        # kept — the caller may populate it after constructing the engine.
        self.knowledge_base = (knowledge_base if knowledge_base is not None
                               else TripleStore())
        self.mapping = mapping or ResourceMapping()
        self.stored_queries = stored_queries or StoredQueryRegistry()
        self.include_original = include_original
        self.join_strategy = join_strategy
        self.sqp = SemanticQueryParser()
        self.sqm = SemanticQueryModule(self.mapping, self.stored_queries,
                                       cache=extraction_cache)
        #: Telemetry hook (duck-typed): attached by the session layer /
        #: platform, cascaded to the SQM and the databank.
        self.telemetry = None

    def attach_telemetry(self, telemetry) -> None:
        """Wire a telemetry bundle through the whole pipeline."""
        self.telemetry = telemetry
        self.sqm.attach_telemetry(telemetry)
        attach = getattr(self.databank, "attach_telemetry", None)
        if attach is not None:
            attach(telemetry)
        if telemetry is None:
            return
        metrics = telemetry.metrics
        stage_family = metrics.histogram(
            "repro_sesql_stage_seconds",
            "Wall time of the SESQL pipeline stages",
            labels=("stage",))
        self._tm_stage = {stage: stage_family.labels(stage)
                          for stage in _STAGES}
        self._tm_dedupe = metrics.counter(
            "repro_extraction_dedupe_total",
            "Duplicate extractions served from the per-statement memo")

    @property
    def extraction_cache(self):
        return self.sqm.cache

    # -- stage 1: parsing --------------------------------------------------------

    def parse(self, text: str) -> EnrichedQuery:
        """Run the SQP alone (stage 1 of the pipeline)."""
        return self.sqp.parse(text)

    # -- stage 2: SPARQL extraction ----------------------------------------------

    @staticmethod
    def extraction_key(enrichment: Enrichment) -> tuple:
        """The logical identity of an enrichment's SPARQL extraction.

        Two enrichments with the same key extract identical knowledge
        from the same KB — whatever tagged condition or stage (WHERE vs
        SELECT) they appear in — so one execution serves both.
        """
        if isinstance(enrichment, ReplaceConstant):
            return ("values", enrichment.prop, enrichment.constant)
        if isinstance(enrichment, (ReplaceVariable, SchemaExtension,
                                   SchemaReplacement)):
            return ("pairs", enrichment.prop)
        if isinstance(enrichment, (BoolSchemaExtension,
                                   BoolSchemaReplacement)):
            return ("subjects", enrichment.prop, enrichment.concept)
        raise EnrichmentError(  # pragma: no cover - exhaustive
            f"unhandled enrichment {enrichment.kind}")

    def extraction_for(self, enrichment: Enrichment,
                       kb: TripleStore,
                       memo: dict | None = None) -> Extraction:
        """Run (or recall from cache/memo) the SQM extraction for one
        clause.  *memo* dedupes identical extractions within a single
        statement; the SQM's generation-keyed cache dedupes across
        statements and re-executions."""
        key = self.extraction_key(enrichment)
        if memo is not None:
            found = memo.get(key)
            if found is not None:
                if self.telemetry is not None:
                    self._tm_dedupe.inc()
                return found
        if key[0] == "values":
            extraction = self.sqm.values_for(kb, enrichment.prop,
                                             enrichment.constant)
        elif key[0] == "pairs":
            extraction = self.sqm.pairs_for(kb, enrichment.prop)
        else:
            extraction = self.sqm.subjects_for(kb, enrichment.prop,
                                               enrichment.concept)
        if memo is not None:
            memo[key] = extraction
        return extraction

    def extraction_plan(self, enriched: EnrichedQuery, kb: TripleStore,
                        which: str, memo: dict | None = None
                        ) -> list[tuple[Enrichment, Extraction]]:
        """Extractions for the ``"where"`` or ``"select"`` enrichments.

        Pass one *memo* dict across both stages of a statement so a
        WHERE and a SELECT enrichment over the same property (or stored
        query) evaluate their SPARQL once.
        """
        enrichments = (enriched.where_enrichments() if which == "where"
                       else enriched.select_enrichments())
        return [(enrichment, self.extraction_for(enrichment, kb, memo))
                for enrichment in enrichments]

    # -- stage 3: WHERE rewrite + databank query ----------------------------------

    def apply_where_rewrites(self, enriched: EnrichedQuery,
                             plan: list[tuple[Enrichment, Extraction]],
                             include_original: bool) -> WhereRewriter:
        """Rewrite tagged conditions in place over materialized temp tables.

        The caller owns the returned rewriter and must ``cleanup()`` it
        once the databank query has run (or been skipped, for explain).
        """
        rewriter = WhereRewriter(self.databank, self.mapping,
                                 include_original)
        try:
            for enrichment, extraction in plan:
                condition = enriched.conditions[enrichment.cond]
                if isinstance(enrichment, ReplaceConstant):
                    rewriter.apply_replace_constant(
                        enriched.query, enrichment, condition, extraction)
                else:
                    rewriter.apply_replace_variable(
                        enriched.query, enrichment, condition, extraction)
        except BaseException:
            rewriter.cleanup()
            raise
        return rewriter

    # -- stage 4: combine ----------------------------------------------------------

    def combine_enrichments(self, base: ResultSet,
                            plan: list[tuple[Enrichment, Extraction]],
                            join_strategy: str,
                            final_sqls: list[str]) -> ResultSet:
        """JoinManager pass: fold each SELECT enrichment into the result."""
        join_manager = JoinManager(self.mapping, join_strategy)
        current = base
        for enrichment, extraction in plan:
            outcome = join_manager.combine(current, enrichment, extraction)
            current = outcome.result
            if outcome.final_sql is not None:
                final_sqls.append(outcome.final_sql)
        return current

    # -- the full pipeline ---------------------------------------------------------

    def execute(self, text: str,
                knowledge_base: TripleStore | None = None,
                include_original: bool | None = None,
                join_strategy: str | None = None) -> SESQLResult:
        """Run a SESQL query; per-call arguments override engine defaults."""
        started = time.perf_counter()
        enriched = self.sqp.parse(text)
        parse_time = time.perf_counter() - started
        # The freshly parsed AST is private to this call, so the rewrite
        # stage may mutate it directly (reuse_ast=True).
        return self.execute_parsed(
            enriched, knowledge_base=knowledge_base,
            include_original=include_original, join_strategy=join_strategy,
            reuse_ast=True, parse_time=parse_time)

    def execute_parsed(self, enriched: EnrichedQuery,
                       knowledge_base: TripleStore | None = None,
                       include_original: bool | None = None,
                       join_strategy: str | None = None,
                       reuse_ast: bool = False,
                       parse_time: float = 0.0) -> SESQLResult:
        """Run stages 2-4 on an already-parsed (e.g. prepared) query.

        Unless ``reuse_ast`` is set, *enriched* is deep-copied first: the
        WHERE rewrite mutates the query AST, and a prepared template must
        survive the call unchanged.
        """
        kb = knowledge_base if knowledge_base is not None \
            else self.knowledge_base
        include = (self.include_original if include_original is None
                   else include_original)
        strategy = join_strategy or self.join_strategy
        if not reuse_ast:
            enriched = clone_enriched(enriched)

        started = time.perf_counter()
        timings = {"parse": parse_time}
        sparql_queries: list[str] = []
        final_sqls: list[str] = []
        cache = self.sqm.cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        executions_before = self.sqm.sparql_execution_count()
        tel = self.telemetry
        # One memo across the WHERE and SELECT stages: identical logical
        # extractions within this statement execute once.
        memo: dict = {}

        stage = time.perf_counter()
        with (tel.span("sesql.extract", stage="where")
              if tel is not None else _NOOP):
            where_plan = self.extraction_plan(enriched, kb, "where", memo)
            sparql_queries.extend(x.sparql for _e, x in where_plan)
            rewriter = self.apply_where_rewrites(enriched, where_plan,
                                                 include)
        timings["where_rewrite"] = time.perf_counter() - stage

        db_plan = None
        try:
            executed_sql = render_query(enriched.query)
            stage = time.perf_counter()
            with (tel.span("sesql.sql") if tel is not None else _NOOP):
                base = self.databank.execute_ast(enriched.query)
            timings["sql"] = time.perf_counter() - stage
            db_plan = getattr(self.databank, "last_plan", None)
            if not isinstance(base, ResultSet):  # pragma: no cover
                raise EnrichmentError("the SQL part did not produce rows")
        finally:
            rewriter.cleanup()

        stage = time.perf_counter()
        with (tel.span("sesql.combine", strategy=strategy)
              if tel is not None else _NOOP):
            select_plan = self.extraction_plan(enriched, kb, "select", memo)
            sparql_queries.extend(x.sparql for _e, x in select_plan)
            current = self.combine_enrichments(base, select_plan, strategy,
                                               final_sqls)
        timings["combine"] = time.perf_counter() - stage
        timings["total"] = parse_time + time.perf_counter() - started
        if tel is not None:
            for name, hist in self._tm_stage.items():
                if name in timings:
                    hist.observe(timings[name])

        return SESQLResult(
            result=current,
            enriched=enriched,
            base_sql=enriched.sql_text,
            executed_sql=executed_sql,
            sparql_queries=sparql_queries,
            final_sqls=final_sqls,
            timings=timings,
            cache_hits=(cache.hits - hits_before
                        if cache is not None else 0),
            cache_misses=(cache.misses - misses_before
                          if cache is not None else 0),
            sparql_executions=(self.sqm.sparql_execution_count()
                               - executions_before),
            db_plan=db_plan,
        )

    def query(self, text: str, **kwargs) -> ResultSet:
        """Execute and return just the enriched result rows."""
        return self.execute(text, **kwargs).result

    # -- streaming -----------------------------------------------------------------

    def stream(self, text: str,
               knowledge_base: TripleStore | None = None,
               include_original: bool | None = None,
               join_strategy: str | None = None,
               page_size: int = 256) -> Cursor:
        """Run a SESQL query lazily, returning a :class:`Cursor`.

        The SQL stage streams from the databank (``LIMIT k`` stops
        after *k* rows) and SELECT enrichments are combined one page at
        a time, so the first enriched row is available long before the
        full result would have materialized.
        """
        enriched = self.sqp.parse(text)
        return self.stream_parsed(
            enriched, knowledge_base=knowledge_base,
            include_original=include_original, join_strategy=join_strategy,
            reuse_ast=True, page_size=page_size)

    def stream_parsed(self, enriched: EnrichedQuery,
                      knowledge_base: TripleStore | None = None,
                      include_original: bool | None = None,
                      join_strategy: str | None = None,
                      reuse_ast: bool = False,
                      page_size: int = 256) -> Cursor:
        """Streaming counterpart of :meth:`execute_parsed`.

        Stages 2-3 (SPARQL extraction, WHERE rewrite) still run eagerly
        — they are planning work and must precede the databank query —
        but the databank result is pulled through a cursor and each
        SELECT enrichment is folded in per *page_size* rows.  The
        enrichment temp tables live until the returned cursor is
        exhausted or closed; observers (``on_result`` context feeding)
        are not invoked for streamed executions.
        """
        if page_size < 1:
            raise EnrichmentError(
                f"page_size must be positive, got {page_size}")
        kb = knowledge_base if knowledge_base is not None \
            else self.knowledge_base
        include = (self.include_original if include_original is None
                   else include_original)
        strategy = join_strategy or self.join_strategy
        if not reuse_ast:
            enriched = clone_enriched(enriched)

        tel = self.telemetry
        memo: dict = {}
        with (tel.span("sesql.extract", stage="where")
              if tel is not None else _NOOP):
            where_plan = self.extraction_plan(enriched, kb, "where", memo)
            rewriter = self.apply_where_rewrites(enriched, where_plan,
                                                 include)
        cleaned = [False]

        def cleanup() -> None:
            if not cleaned[0]:
                cleaned[0] = True
                rewriter.cleanup()

        try:
            base_cursor = self.databank.stream_ast(enriched.query)
            with (tel.span("sesql.extract", stage="select")
                  if tel is not None else _NOOP):
                select_plan = self.extraction_plan(enriched, kb, "select",
                                                   memo)
            # Extraction-side combine structures are built ONCE per
            # cursor and applied page after page (hash-probe semantics
            # identical to the tempdb final-SQL LEFT JOIN, whatever the
            # configured strategy).
            join_manager = JoinManager(self.mapping, strategy)
            combiners = [join_manager.prepare(enrichment, extraction)
                         for enrichment, extraction in select_plan]
            base_columns = list(base_cursor.columns)
            # Combining an empty page derives the enriched column list
            # (and validates the enrichment attributes) up front.
            probe = ResultSet(base_columns, [])
            for combiner in combiners:
                probe = combiner.combine(probe)
            out_columns = probe.columns
        except BaseException:
            cleanup()
            raise

        def pages():
            try:
                while True:
                    page = base_cursor.fetchmany(page_size)
                    if not page:
                        break
                    current = ResultSet(base_columns, page)
                    for combiner in combiners:
                        current = combiner.combine(current)
                    yield from current.rows
            finally:
                base_cursor.close()
                cleanup()

        def on_close() -> None:
            base_cursor.close()
            cleanup()

        return Cursor(out_columns, pages(), on_close=on_close)
