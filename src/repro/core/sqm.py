"""The Semantic Query Module (SQM) of Fig. 6.

The SQM receives the enrichment syntax tree and constructs the SPARQL
queries that extract the relevant knowledge from the user's ontology.
Property arguments are resolved against the stored-query registry first
(Example 4.5's ``dangerQuery``); otherwise the module synthesises the
plain property-extraction pattern ``SELECT ?s ?o WHERE { ?s <prop> ?o }``.

An optional extraction *cache* (any mapping-like object with ``get``/
``put``, e.g. :class:`repro.api.ExtractionCache`) memoizes extraction
results keyed on the knowledge base's mutation ``generation``, so a
prepared query re-executed against an unchanged KB skips re-running its
SPARQL entirely.  Within one statement the engine additionally dedupes
identical logical extractions across tagged conditions and stages (see
:meth:`repro.core.SESQLEngine.extraction_for`);
:meth:`SemanticQueryModule.sparql_execution_count` counts the queries
that actually reached the KB.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field

from ..rdf.store import TripleStore
from ..rdf.terms import Literal, Term
from ..sparql.evaluator import Evaluator, SparqlResults
from ..sparql.parser import parse_sparql
from .errors import StoredQueryError
from .mapping import ResourceMapping
from .stored_queries import StoredQueryRegistry


@dataclass
class Extraction:
    """Knowledge extracted from the KB for one enrichment clause."""

    sparql: str
    pairs: list[tuple[Term, Term]] = field(default_factory=list)
    values: list[Term] = field(default_factory=list)
    subjects: set[Term] = field(default_factory=set)


class SemanticQueryModule:
    """Builds and executes SPARQL extraction queries."""

    def __init__(self, mapping: ResourceMapping,
                 stored_queries: StoredQueryRegistry | None = None,
                 cache=None) -> None:
        self.mapping = mapping
        self.stored_queries = stored_queries or StoredQueryRegistry()
        #: Optional get/put memo for extraction results (see module doc).
        self.cache = cache
        #: SPARQL queries actually *executed* on a KB (cache hits and
        #: per-statement dedupe do not increment it) — the counter
        #: behind the "deduped extractions execute once" guarantee.
        #: Read it via :meth:`sparql_execution_count`.
        self._sparql_executions = 0
        #: Telemetry hook (duck-typed): when attached, SPARQL
        #: executions and extraction-cache hits/misses are also folded
        #: into the shared metrics registry.
        self.telemetry = None

    def attach_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry
        if telemetry is None:
            return
        metrics = telemetry.metrics
        self._tm_sparql_total = metrics.counter(
            "repro_sparql_executions_total",
            "SPARQL extraction queries that actually reached a KB")
        self._tm_sparql_seconds = metrics.histogram(
            "repro_sparql_seconds",
            "Wall time of SPARQL extraction execution")
        cache_family = metrics.counter(
            "repro_extraction_cache_total",
            "Extraction-cache lookups by outcome",
            labels=("result",))
        self._tm_cache_hit = cache_family.labels("hit")
        self._tm_cache_miss = cache_family.labels("miss")

    def sparql_execution_count(self) -> int:
        """SPARQL queries this module has actually run against a KB."""
        return self._sparql_executions

    # -- memoization hook -----------------------------------------------------

    def _memoized(self, kind: str, kb: TripleStore, args: tuple,
                  compute) -> Extraction:
        generation = getattr(kb, "generation", None)
        if self.cache is None or generation is None:
            return compute()
        stored = self.stored_queries.get(args[0])
        # Generations are per-store counters, so the key pairs them
        # with the store's process-unique identity: two stores both at
        # generation 3 (e.g. successive effective-KB rebuilds) must not
        # collide.
        key = (kind, getattr(kb, "store_id", id(kb)), generation, args,
               stored.text if stored is not None else None)
        extraction = self.cache.get(key)
        tel = self.telemetry
        if extraction is None:
            if tel is not None:
                self._tm_cache_miss.inc()
            extraction = compute()
            self.cache.put(key, extraction)
        elif tel is not None:
            self._tm_cache_hit.inc()
        return extraction

    # -- helpers ------------------------------------------------------------

    _PATH_DELIMITERS = re.compile(r"([\^/|])")

    def _property_path_n3(self, prop: str) -> str:
        """Render a property argument as a SPARQL predicate or path.

        Extension over the paper: the property argument may be a SPARQL
        property path over names, e.g. ``^isA`` (inverse: "the things
        classified as X") or ``inCountry/inContinent`` (composition).
        Plain names keep the paper's exact semantics.
        """
        if not self._PATH_DELIMITERS.search(prop):
            return self.mapping.property_to_iri(prop).n3()
        pieces = []
        for token in self._PATH_DELIMITERS.split(prop):
            if token in ("^", "/", "|"):
                pieces.append(token)
            elif token:
                pieces.append(self.mapping.property_to_iri(token).n3())
        return "".join(pieces)

    def _evaluate(self, kb: TripleStore, query, text: str) -> SparqlResults:
        self._sparql_executions += 1
        tel = self.telemetry
        if tel is None:
            return Evaluator(kb).select(query)
        started = time.perf_counter()
        with tel.span("sparql.execute", sparql=text):
            results = Evaluator(kb).select(query)
        self._tm_sparql_total.inc()
        self._tm_sparql_seconds.observe(time.perf_counter() - started)
        return results

    def _run(self, kb: TripleStore, text: str) -> SparqlResults:
        return self._evaluate(kb, parse_sparql(text), text)

    def _run_stored(self, kb: TripleStore, name: str) -> SparqlResults:
        stored = self.stored_queries.get(name)
        return self._evaluate(kb, stored.query, stored.text)

    # -- extraction forms -----------------------------------------------------

    def pairs_for(self, kb: TripleStore, prop: str) -> Extraction:
        """(subject, object) pairs for schema extension/replacement and
        REPLACEVARIABLE."""
        return self._memoized("pairs", kb, (prop,),
                              lambda: self._pairs_for(kb, prop))

    def _pairs_for(self, kb: TripleStore, prop: str) -> Extraction:
        stored = self.stored_queries.get(prop)
        if stored is not None:
            results = self._run_stored(kb, prop)
            if len(results.variables) < 2:
                raise StoredQueryError(
                    f"stored query {prop!r} must bind two variables to be "
                    "used as a pair extraction")
            first, second = results.variables[0], results.variables[1]
            pairs = [(solution[first], solution[second])
                     for solution in results
                     if first in solution and second in solution]
            return Extraction(sparql=stored.text, pairs=pairs)
        prop_n3 = self._property_path_n3(prop)
        text = f"SELECT ?s ?o WHERE {{ ?s {prop_n3} ?o }}"
        results = self._run(kb, text)
        pairs = [(row[0], row[1]) for row in results.tuples()
                 if row[0] is not None and row[1] is not None]
        return Extraction(sparql=text, pairs=pairs)

    def values_for(self, kb: TripleStore, prop: str,
                   constant: str) -> Extraction:
        """Replacement values for REPLACECONSTANT's constant."""
        return self._memoized("values", kb, (prop, constant),
                              lambda: self._values_for(kb, prop, constant))

    def _values_for(self, kb: TripleStore, prop: str,
                    constant: str) -> Extraction:
        stored = self.stored_queries.get(prop)
        if stored is not None:
            results = self._run_stored(kb, prop)
            if len(results.variables) == 1:
                variable = results.variables[0]
                values = [solution[variable] for solution in results
                          if variable in solution]
                return Extraction(sparql=stored.text, values=values)
            first, second = results.variables[0], results.variables[1]
            constant_term = self.mapping.concept_to_term(constant)
            values = [solution[second] for solution in results
                      if solution.get(first) == constant_term
                      and second in solution]
            return Extraction(sparql=stored.text, values=values)
        constant_term = self.mapping.concept_to_term(constant)
        prop_n3 = self._property_path_n3(prop)
        text = (f"SELECT ?o WHERE {{ {constant_term.n3()} "
                f"{prop_n3} ?o }}")
        results = self._run(kb, text)
        values = [row[0] for row in results.tuples() if row[0] is not None]
        return Extraction(sparql=text, values=values)

    def subjects_for(self, kb: TripleStore, prop: str,
                     concept: str) -> Extraction:
        """Subjects related to *concept* via *prop* (boolean enrichments).

        The concept argument is matched both as an IRI in the default
        namespace and as a plain literal, since user KBs state e.g.
        ``smg:Mercury smg:isA smg:HazardousWaste`` (IRI objects) as well
        as ``smg:Mercury smg:dangerLevel "high"`` (literal objects).
        """
        return self._memoized("subjects", kb, (prop, concept),
                              lambda: self._subjects_for(kb, prop, concept))

    def _subjects_for(self, kb: TripleStore, prop: str,
                      concept: str) -> Extraction:
        concept_term = self.mapping.concept_to_term(concept)
        concept_literal = Literal(concept)
        stored = self.stored_queries.get(prop)
        if stored is not None:
            results = self._run_stored(kb, prop)
            if len(results.variables) == 1:
                variable = results.variables[0]
                subjects = {solution[variable] for solution in results
                            if variable in solution}
                return Extraction(sparql=stored.text, subjects=subjects)
            first, second = results.variables[0], results.variables[1]
            subjects = {solution[first] for solution in results
                        if solution.get(second) in (concept_term,
                                                    concept_literal)
                        and first in solution}
            return Extraction(sparql=stored.text, subjects=subjects)
        prop_n3 = self._property_path_n3(prop)
        text = (f"SELECT ?s WHERE {{ "
                f"{{ ?s {prop_n3} {concept_term.n3()} }} UNION "
                f"{{ ?s {prop_n3} {concept_literal.n3()} }} }}")
        results = self._run(kb, text)
        subjects = {row[0] for row in results.tuples()
                    if row[0] is not None}
        return Extraction(sparql=text, subjects=subjects)
