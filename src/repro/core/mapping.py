"""The resource mapping: how SQL values and RDF terms correspond.

Fig. 6 of the paper: *"A JoinManager module combines the partial results
returned by the two independent queries, leveraging the resource mapping
described in an XML file."*

A :class:`ResourceMapping` declares, per relational attribute, how its
values render as RDF terms (IRI in some namespace, or literal) and how
RDF terms convert back to SQL values.  It loads from / saves to the XML
document format shown below::

    <resource-mapping default-namespace="http://smartground.eu/ns#">
      <attribute name="elem_name" kind="iri"
                 namespace="http://smartground.eu/ns#"/>
      <attribute name="amount" kind="literal" datatype="real"/>
    </resource-mapping>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass

from ..rdf.namespace import SMG, NamespaceManager
from ..rdf.terms import BNode, IRI, Literal, Term
from .errors import MappingError

_KINDS = ("iri", "literal", "auto")
_DATATYPES = ("text", "integer", "real", "boolean")


@dataclass
class AttributeMapping:
    """Mapping rules for a single relational attribute."""

    name: str
    kind: str = "auto"          # iri | literal | auto
    namespace: str | None = None
    datatype: str = "text"      # for kind=literal

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise MappingError(f"unknown mapping kind {self.kind!r}")
        if self.datatype not in _DATATYPES:
            raise MappingError(f"unknown datatype {self.datatype!r}")


class ResourceMapping:
    """Attribute-level SQL <-> RDF value bridge used by the JoinManager."""

    def __init__(self, default_namespace: str | None = None,
                 namespaces: NamespaceManager | None = None) -> None:
        self.default_namespace = default_namespace or SMG.base
        self.namespaces = namespaces or NamespaceManager()
        self._attributes: dict[str, AttributeMapping] = {}

    # -- configuration ------------------------------------------------------

    def map_attribute(self, name: str, kind: str = "auto",
                      namespace: str | None = None,
                      datatype: str = "text") -> AttributeMapping:
        mapping = AttributeMapping(name, kind, namespace, datatype)
        self._attributes[name.lower()] = mapping
        return mapping

    def attribute(self, name: str) -> AttributeMapping:
        found = self._attributes.get(name.lower())
        if found is None:
            return AttributeMapping(name, "auto")
        return found

    # -- SQL value -> RDF term ------------------------------------------------

    def to_term(self, attr: str, value: object) -> Term | None:
        """Render a SQL value as the RDF term the KB would use."""
        if value is None:
            return None
        mapping = self.attribute(attr)
        if mapping.kind == "iri" or (mapping.kind == "auto"
                                     and isinstance(value, str)):
            namespace = mapping.namespace or self.default_namespace
            return IRI(namespace + str(value))
        return Literal(value)

    def concept_to_term(self, name: str) -> IRI:
        """Render an enrichment *concept* argument (e.g. HazardousWaste)."""
        if name.startswith("http://") or name.startswith("https://"):
            return IRI(name)
        if ":" in name:
            return self.namespaces.expand(name)
        return IRI(self.default_namespace + name)

    def property_to_iri(self, name: str) -> IRI:
        """Render an enrichment *property* argument (e.g. dangerLevel)."""
        return self.concept_to_term(name)

    # -- RDF term -> SQL value ---------------------------------------------------

    def to_sql_value(self, term: Term | None) -> object:
        """Convert an RDF term to the SQL value used for joining/output."""
        if term is None:
            return None
        if isinstance(term, IRI):
            return term.local_name()
        if isinstance(term, Literal):
            return term.value
        if isinstance(term, BNode):
            return term.n3()
        raise MappingError(f"cannot convert {term!r} to a SQL value")

    # -- XML round trip --------------------------------------------------------------

    def to_xml(self) -> str:
        root = ET.Element("resource-mapping",
                          {"default-namespace": self.default_namespace})
        for mapping in self._attributes.values():
            attrs = {"name": mapping.name, "kind": mapping.kind}
            if mapping.namespace:
                attrs["namespace"] = mapping.namespace
            if mapping.kind == "literal":
                attrs["datatype"] = mapping.datatype
            ET.SubElement(root, "attribute", attrs)
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str,
                 namespaces: NamespaceManager | None = None
                 ) -> "ResourceMapping":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise MappingError(f"bad resource-mapping XML: {exc}") from exc
        if root.tag != "resource-mapping":
            raise MappingError(
                f"expected <resource-mapping>, found <{root.tag}>")
        mapping = cls(root.get("default-namespace"), namespaces)
        for element in root:
            if element.tag != "attribute":
                raise MappingError(
                    f"unexpected element <{element.tag}>")
            name = element.get("name")
            if not name:
                raise MappingError("<attribute> requires a name")
            mapping.map_attribute(
                name,
                element.get("kind", "auto"),
                element.get("namespace"),
                element.get("datatype", "text"),
            )
        return mapping

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_xml())

    @classmethod
    def load(cls, path: str,
             namespaces: NamespaceManager | None = None) -> "ResourceMapping":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_xml(handle.read(), namespaces)
