"""The condition-tag scanner of Remark 4.1.

SESQL marks WHERE-clause conditions that enrichment should affect with a
construct that standard SQL would reject::

    WHERE ${ elem_name = HazardousWaste : cond1 } AND city = 'Torino'

This dedicated scanner (step (ii) of Remark 4.1) recognises the
``${ ... : id }`` regions, records each condition together with its
syntax tree, and *cleans* the query by replacing the region with the
bare condition text — producing syntactically correct SQL (step (iii)).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.parser import parse_expr
from .ast import TaggedCondition
from .errors import SesqlSyntaxError


@dataclass
class ScanResult:
    clean_text: str
    conditions: dict[str, TaggedCondition]


def scan_condition_tags(text: str) -> ScanResult:
    """Extract ``${condition:id}`` tags and return the cleaned SQL."""
    pieces: list[str] = []
    conditions: dict[str, TaggedCondition] = {}
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char == "'":
            end = _skip_string(text, position)
            pieces.append(text[position:end])
            position = end
            continue
        if char == "$" and position + 1 < length \
                and text[position + 1] == "{":
            condition_text, cond_id, end = _read_tag(text, position)
            if cond_id in conditions:
                raise SesqlSyntaxError(
                    f"duplicate condition tag {cond_id!r}", position)
            try:
                expr = parse_expr(condition_text)
            except Exception as exc:
                raise SesqlSyntaxError(
                    f"cannot parse tagged condition {condition_text!r}: "
                    f"{exc}", position) from exc
            conditions[cond_id] = TaggedCondition(
                cond_id, condition_text.strip(), expr)
            pieces.append(condition_text)
            position = end
            continue
        pieces.append(char)
        position += 1
    return ScanResult("".join(pieces), conditions)


def _skip_string(text: str, start: int) -> int:
    """Return the index just past a single-quoted SQL string."""
    position = start + 1
    while position < len(text):
        if text[position] == "'":
            if position + 1 < len(text) and text[position + 1] == "'":
                position += 2
                continue
            return position + 1
        position += 1
    raise SesqlSyntaxError("unterminated string literal", start)


def _read_tag(text: str, start: int) -> tuple[str, str, int]:
    """Parse ``${ condition : id }`` starting at *start*.

    The condition may itself contain parentheses and strings; the
    separating ``:`` is the last colon at nesting depth zero before the
    closing ``}``.
    """
    position = start + 2  # past '${'
    depth = 0
    last_colon = -1
    while position < len(text):
        char = text[position]
        if char == "'":
            position = _skip_string(text, position)
            continue
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char == ":" and depth == 0:
            last_colon = position
        elif char == "}" and depth == 0:
            if last_colon < 0:
                raise SesqlSyntaxError(
                    "condition tag is missing ':id'", start)
            condition_text = text[start + 2:last_colon]
            cond_id = text[last_colon + 1:position].strip()
            if not cond_id or not all(c.isalnum() or c == "_"
                                      for c in cond_id):
                raise SesqlSyntaxError(
                    f"invalid condition identifier {cond_id!r}", start)
            return condition_text, cond_id, position + 1
        position += 1
    raise SesqlSyntaxError("unterminated condition tag", start)
