"""Per-user knowledge bases with statement provenance (Fig. 4).

Every RDF statement in CroSSE is annotated with its *source*: the user
who inserted it and the users who have accepted it as theirs (the
``userStatement`` / ``userBelief`` edges of the Fig. 4 schema).  A
user's *effective* knowledge base — the context her SESQL queries run in
(Section III-A) — is the union of her own statements and those she has
accepted from peers.

``to_rdf_graph`` exports the whole book-keeping as reified RDF exactly
in the Fig. 4 vocabulary (``smg:Statement``, ``rdf:subject/predicate/
object``, ``userStatement``, ``userBelief``, ``stmReference`` with
``refTitle``/``refAuthor``/``refLink``), so the metadata store itself is
queryable with SPARQL.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..rdf.namespace import RDF, SMG
from ..rdf.store import Triple, TripleStore
from ..rdf.terms import IRI, Literal, Term, term_from_python
from .errors import StatementError

_statement_ids = itertools.count()


@dataclass
class Reference:
    """Bibliographic/file backing for a statement (Fig. 4 smg:Reference)."""

    title: str = ""
    author: str = ""
    link: str = ""


@dataclass
class StatementRecord:
    """One crowd statement plus its provenance."""

    statement_id: int
    triple: Triple
    author: str
    public: bool = True
    accepted_by: set[str] = field(default_factory=set)
    reference: Reference | None = None


class KnowledgeBaseStore:
    """All statements on the platform, with per-user effective views.

    There is deliberately **no** consistency checking across users
    (Section III-A: "there is no centralized control on the correctness
    and/or consistency of the crowdsourced knowledge").
    """

    def __init__(self) -> None:
        self._statements: dict[int, StatementRecord] = {}
        self._by_author: dict[str, list[int]] = {}
        self._effective_cache: dict[str, TripleStore] = {}

    # -- insertion ------------------------------------------------------------

    def insert(self, author: str, subject, predicate, obj,
               public: bool = True,
               reference: Reference | None = None) -> StatementRecord:
        triple = Triple(term_from_python(subject), predicate,
                        term_from_python(obj))
        record = StatementRecord(next(_statement_ids), triple, author,
                                 public, reference=reference)
        self._statements[record.statement_id] = record
        self._by_author.setdefault(author, []).append(record.statement_id)
        self._effective_cache.pop(author, None)
        return record

    def retract(self, author: str, statement_id: int) -> None:
        record = self.get(statement_id)
        if record.author != author:
            raise StatementError(
                f"statement {statement_id} belongs to {record.author!r}, "
                f"not {author!r}")
        del self._statements[statement_id]
        self._by_author[author].remove(statement_id)
        self._effective_cache.clear()

    # -- acceptance (the crowdsourced scenario) ------------------------------------

    def accept(self, username: str, statement_id: int) -> StatementRecord:
        """Import a peer's public statement into one's own context."""
        record = self.get(statement_id)
        if record.author == username:
            raise StatementError("cannot accept one's own statement")
        if not record.public:
            raise StatementError(
                f"statement {statement_id} is not public")
        record.accepted_by.add(username)
        self._effective_cache.pop(username, None)
        return record

    def reject(self, username: str, statement_id: int) -> None:
        record = self.get(statement_id)
        record.accepted_by.discard(username)
        self._effective_cache.pop(username, None)

    # -- lookup --------------------------------------------------------------------

    def get(self, statement_id: int) -> StatementRecord:
        try:
            return self._statements[statement_id]
        except KeyError:
            raise StatementError(
                f"no statement with id {statement_id}") from None

    def statements_of(self, author: str) -> list[StatementRecord]:
        return [self._statements[sid]
                for sid in self._by_author.get(author, [])]

    def public_statements(self,
                          exclude_author: str | None = None
                          ) -> list[StatementRecord]:
        """Annotations visible to other registered users (Section III-A)."""
        return [record for record in self._statements.values()
                if record.public and record.author != exclude_author]

    def accepted_by(self, username: str) -> list[StatementRecord]:
        return [record for record in self._statements.values()
                if username in record.accepted_by]

    def __len__(self) -> int:
        return len(self._statements)

    # -- effective context -------------------------------------------------------------

    def effective_kb(self, username: str) -> TripleStore:
        """Own statements + accepted statements, as a plain triple store.

        This is the personal knowledge base "that will constitute the
        context in which a user's query will be evaluated".
        """
        cached = self._effective_cache.get(username)
        if cached is not None:
            return cached
        store = TripleStore()
        for record in self.statements_of(username):
            store.add(record.triple)
        for record in self.accepted_by(username):
            store.add(record.triple)
        self._effective_cache[username] = store
        return store

    # -- Fig. 4 reified export ------------------------------------------------------------

    def to_rdf_graph(self) -> TripleStore:
        """Export statements + provenance in the Fig. 4 RDF schema."""
        graph = TripleStore()
        for record in self._statements.values():
            node = SMG[f"statement_{record.statement_id}"]
            graph.add(node, RDF.type, SMG.Statement)
            graph.add(node, RDF.subject, record.triple.subject)
            graph.add(node, RDF.predicate, record.triple.predicate)
            graph.add(node, RDF.object, record.triple.object)
            author = SMG[f"user_{record.author}"]
            graph.add(author, RDF.type, SMG.User)
            graph.add(author, SMG.userStatement, node)
            for username in record.accepted_by:
                believer = SMG[f"user_{username}"]
                graph.add(believer, RDF.type, SMG.User)
                graph.add(believer, SMG.userBelief, node)
            if record.reference is not None:
                ref_node = SMG[f"reference_{record.statement_id}"]
                graph.add(node, SMG.stmReference, ref_node)
                graph.add(ref_node, RDF.type, SMG.Reference)
                if record.reference.title:
                    graph.add(ref_node, SMG.refTitle,
                              Literal(record.reference.title))
                if record.reference.author:
                    graph.add(ref_node, SMG.refAuthor,
                              Literal(record.reference.author))
                if record.reference.link:
                    graph.add(ref_node, SMG.refLink,
                              Literal(record.reference.link))
        return graph
