"""Per-user knowledge bases with statement provenance (Fig. 4).

Every RDF statement in CroSSE is annotated with its *source*: the user
who inserted it and the users who have accepted it as theirs (the
``userStatement`` / ``userBelief`` edges of the Fig. 4 schema).  A
user's *effective* knowledge base — the context her SESQL queries run in
(Section III-A) — is the union of her own statements and those she has
accepted from peers.

The effective KB is the paper's personal evaluation context: every
SE-SQL extraction a user issues runs against it, so builds are batch
loads through one platform-wide term dictionary (interned statement
terms are reused across users) and cache invalidation is stamp-based —
insert/retract/accept/reject advance exactly the affected users'
stamps, and an untouched user keeps her store (and its extraction-cache
``generation``) across other users' activity.

``to_rdf_graph`` exports the whole book-keeping as reified RDF exactly
in the Fig. 4 vocabulary (``smg:Statement``, ``rdf:subject/predicate/
object``, ``userStatement``, ``userBelief``, ``stmReference`` with
``refTitle``/``refAuthor``/``refLink``), so the metadata store itself is
queryable with SPARQL.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable

from ..rdf.namespace import RDF, SMG
from ..rdf.store import TermDictionary, Triple, TripleStore
from ..rdf.terms import IRI, Literal, Term, term_from_python
from .errors import StatementError


@dataclass
class Reference:
    """Bibliographic/file backing for a statement (Fig. 4 smg:Reference)."""

    title: str = ""
    author: str = ""
    link: str = ""


@dataclass
class StatementRecord:
    """One crowd statement plus its provenance."""

    statement_id: int
    triple: Triple
    author: str
    public: bool = True
    accepted_by: set[str] = field(default_factory=set)
    reference: Reference | None = None


class KnowledgeBaseStore:
    """All statements on the platform, with per-user effective views.

    There is deliberately **no** consistency checking across users
    (Section III-A: "there is no centralized control on the correctness
    and/or consistency of the crowdsourced knowledge").
    """

    def __init__(self) -> None:
        self._statements: dict[int, StatementRecord] = {}
        self._by_author: dict[str, list[int]] = {}
        #: One dictionary for the whole platform: statement terms are
        #: interned on insert, and every per-user effective KB is built
        #: through it — rebuilding a user's context never re-hashes a
        #: term another context already interned, and extraction joins
        #: across users' KBs run on comparable ids.
        self.dictionary = TermDictionary()
        #: username → (stamp-at-build, effective store).  Stamps come
        #: from ``_clock``; every mutation touching a user advances her
        #: stamp, so a cached store is valid iff its stamp is current —
        #: the KB-level analogue of the triple store's ``generation``.
        self._effective_cache: dict[str, tuple[int, TripleStore]] = {}
        self._user_stamp: dict[str, int] = {}
        self._clock = itertools.count(1)
        #: Per-instance statement-id counter (not a module global): a
        #: recovered store must hand out exactly the ids the pre-crash
        #: process did, independent of any other store in the process.
        self._next_statement_id = 0
        #: Durability hook (duck-typed), set by an attached
        #: :class:`repro.durability.DurabilityManager`.
        self.durability_journal = None

    def _touch(self, *usernames: str) -> None:
        """Advance the mutation stamp of every affected user."""
        stamp = next(self._clock)
        for username in usernames:
            self._user_stamp[username] = stamp

    # -- insertion ------------------------------------------------------------

    def insert(self, author: str, subject, predicate, obj,
               public: bool = True,
               reference: Reference | None = None) -> StatementRecord:
        triple = Triple(term_from_python(subject), predicate,
                        term_from_python(obj))
        # Intern eagerly: effective-KB builds then copy known ids.
        intern = self.dictionary.intern
        intern(triple.subject)
        intern(triple.predicate)
        intern(triple.object)
        statement_id = self._next_statement_id
        self._next_statement_id += 1
        record = StatementRecord(statement_id, triple, author,
                                 public, reference=reference)
        self._statements[record.statement_id] = record
        self._by_author.setdefault(author, []).append(record.statement_id)
        self._touch(author)
        if self.durability_journal is not None:
            ref = record.reference
            self.durability_journal.log(
                "stmt_insert",
                {"id": statement_id, "author": author,
                 "triple": list(triple), "public": public,
                 "reference": ([ref.title, ref.author, ref.link]
                               if ref is not None else None)})
        return record

    def retract(self, author: str, statement_id: int) -> None:
        """Remove one's own statement — also from the effective context
        of every user who had accepted it."""
        record = self.get(statement_id)
        if record.author != author:
            raise StatementError(
                f"statement {statement_id} belongs to {record.author!r}, "
                f"not {author!r}")
        del self._statements[statement_id]
        self._by_author[author].remove(statement_id)
        self._touch(author, *record.accepted_by)
        if self.durability_journal is not None:
            self.durability_journal.log(
                "stmt_retract", {"id": statement_id, "author": author})

    # -- acceptance (the crowdsourced scenario) ------------------------------------

    def accept(self, username: str, statement_id: int) -> StatementRecord:
        """Import a peer's public statement into one's own context."""
        record = self.get(statement_id)
        if record.author == username:
            raise StatementError("cannot accept one's own statement")
        if not record.public:
            raise StatementError(
                f"statement {statement_id} is not public")
        record.accepted_by.add(username)
        self._touch(username)
        if self.durability_journal is not None:
            self.durability_journal.log(
                "stmt_accept", {"id": statement_id, "username": username})
        return record

    def reject(self, username: str, statement_id: int) -> None:
        record = self.get(statement_id)
        record.accepted_by.discard(username)
        self._touch(username)
        if self.durability_journal is not None:
            self.durability_journal.log(
                "stmt_reject", {"id": statement_id, "username": username})

    # -- crash recovery -------------------------------------------------------

    def restore_statement(self, statement_id: int, triple: Triple,
                          author: str, public: bool,
                          accepted_by: Iterable[str] = (),
                          reference: Reference | None = None) -> None:
        """Re-insert a statement with its exact pre-crash identity.

        Used by snapshot load and WAL replay; idempotent on id so a
        snapshot/WAL overlap never duplicates provenance.
        """
        if statement_id in self._statements:
            return
        intern = self.dictionary.intern
        intern(triple.subject)
        intern(triple.predicate)
        intern(triple.object)
        record = StatementRecord(statement_id, triple, author, public,
                                 set(accepted_by), reference)
        self._statements[statement_id] = record
        self._by_author.setdefault(author, []).append(statement_id)
        self._next_statement_id = max(self._next_statement_id,
                                      statement_id + 1)
        self._touch(author, *record.accepted_by)

    # -- lookup --------------------------------------------------------------------

    def get(self, statement_id: int) -> StatementRecord:
        try:
            return self._statements[statement_id]
        except KeyError:
            raise StatementError(
                f"no statement with id {statement_id}") from None

    def statements_of(self, author: str) -> list[StatementRecord]:
        return [self._statements[sid]
                for sid in self._by_author.get(author, [])]

    def public_statements(self,
                          exclude_author: str | None = None
                          ) -> list[StatementRecord]:
        """Annotations visible to other registered users (Section III-A)."""
        return [record for record in self._statements.values()
                if record.public and record.author != exclude_author]

    def accepted_by(self, username: str) -> list[StatementRecord]:
        return [record for record in self._statements.values()
                if username in record.accepted_by]

    def __len__(self) -> int:
        return len(self._statements)

    # -- effective context -------------------------------------------------------------

    def effective_kb(self, username: str) -> TripleStore:
        """Own statements + accepted statements, as a plain triple store.

        This is the personal knowledge base "that will constitute the
        context in which a user's query will be evaluated".  Cached per
        user with stamp-based invalidation: any insert/retract/accept/
        reject touching the user makes the next call rebuild (a fresh
        store generation, so downstream extraction caches miss exactly
        when the context actually changed).  The store is built through
        the platform's shared :class:`~repro.rdf.TermDictionary` as one
        batch load — interned terms are reused, one generation stamp.
        """
        stamp = self._user_stamp.get(username, 0)
        cached = self._effective_cache.get(username)
        if cached is not None and cached[0] == stamp:
            return cached[1]
        store = TripleStore(dictionary=self.dictionary)
        store.add_all(record.triple
                      for record in itertools.chain(
                          self.statements_of(username),
                          self.accepted_by(username)))
        self._effective_cache[username] = (stamp, store)
        return store

    # -- Fig. 4 reified export ------------------------------------------------------------

    def to_rdf_graph(self) -> TripleStore:
        """Export statements + provenance in the Fig. 4 RDF schema."""
        graph = TripleStore(dictionary=self.dictionary)
        for record in self._statements.values():
            node = SMG[f"statement_{record.statement_id}"]
            graph.add(node, RDF.type, SMG.Statement)
            graph.add(node, RDF.subject, record.triple.subject)
            graph.add(node, RDF.predicate, record.triple.predicate)
            graph.add(node, RDF.object, record.triple.object)
            author = SMG[f"user_{record.author}"]
            graph.add(author, RDF.type, SMG.User)
            graph.add(author, SMG.userStatement, node)
            for username in record.accepted_by:
                believer = SMG[f"user_{username}"]
                graph.add(believer, RDF.type, SMG.User)
                graph.add(believer, SMG.userBelief, node)
            if record.reference is not None:
                ref_node = SMG[f"reference_{record.statement_id}"]
                graph.add(node, SMG.stmReference, ref_node)
                graph.add(ref_node, RDF.type, SMG.Reference)
                if record.reference.title:
                    graph.add(ref_node, SMG.refTitle,
                              Literal(record.reference.title))
                if record.reference.author:
                    graph.add(ref_node, SMG.refAuthor,
                              Literal(record.reference.author))
                if record.reference.link:
                    graph.add(ref_node, SMG.refLink,
                              Literal(record.reference.link))
        return graph
