"""Personal activity context (Section I-B(a)).

The platform understands a user's context "through analysis of access
patterns and of the user's own annotations": every query, concept
exploration and annotation feeds a decayed concept-weight profile.
Profiles drive context-aware ranking (:mod:`repro.crosse.ranking`) and
peer discovery (:mod:`repro.crosse.recommend`).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

_EVENT_WEIGHTS = {
    "query": 1.0,
    "explore": 2.0,
    "annotate": 3.0,
    "declare": 4.0,   # explicitly declared interests weigh most
}


@dataclass
class ContextProfile:
    """A concept -> weight vector describing one user's activity."""

    username: str
    weights: dict[str, float] = field(default_factory=dict)
    history: list[tuple[str, str]] = field(default_factory=list)

    def record(self, concept: str, event: str = "explore") -> None:
        if event not in _EVENT_WEIGHTS:
            raise ValueError(f"unknown context event {event!r}")
        key = concept.lower()
        self.weights[key] = self.weights.get(key, 0.0) \
            + _EVENT_WEIGHTS[event]
        self.history.append((event, concept))

    def weight(self, concept: str) -> float:
        return self.weights.get(concept.lower(), 0.0)

    def top_concepts(self, count: int = 10) -> list[tuple[str, float]]:
        ranked = sorted(self.weights.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:count]

    def decay(self, factor: float = 0.5) -> None:
        """Age the profile (older interests fade)."""
        self.weights = {concept: weight * factor
                        for concept, weight in self.weights.items()
                        if weight * factor > 1e-6}

    def cosine_similarity(self, other: "ContextProfile") -> float:
        if not self.weights or not other.weights:
            return 0.0
        shared = set(self.weights) & set(other.weights)
        dot = sum(self.weights[c] * other.weights[c] for c in shared)
        norm_self = sum(w * w for w in self.weights.values()) ** 0.5
        norm_other = sum(w * w for w in other.weights.values()) ** 0.5
        if norm_self == 0.0 or norm_other == 0.0:
            return 0.0
        return dot / (norm_self * norm_other)


class ContextTracker:
    """Profiles for every user plus resource-access bookkeeping."""

    def __init__(self) -> None:
        self._profiles: dict[str, ContextProfile] = {}
        # resource -> {username -> access count}; feeds data recommendation.
        self._resource_access: dict[str, dict[str, int]] = defaultdict(dict)
        #: Durability hook (duck-typed), set by an attached
        #: :class:`repro.durability.DurabilityManager`.
        self.durability_journal = None

    def profile(self, username: str) -> ContextProfile:
        if username not in self._profiles:
            self._profiles[username] = ContextProfile(username)
        return self._profiles[username]

    def profiles(self) -> list[ContextProfile]:
        return list(self._profiles.values())

    def record_concepts(self, username: str, concepts: list[str],
                        event: str = "query") -> None:
        profile = self.profile(username)
        for concept in concepts:
            profile.record(concept, event)
        if concepts and self.durability_journal is not None:
            self.durability_journal.log(
                "context", {"username": username,
                            "concepts": list(concepts), "event": event})

    def record_resource(self, username: str, resource: str) -> None:
        """Track that *username* explored/used *resource*."""
        accesses = self._resource_access[resource]
        accesses[username] = accesses.get(username, 0) + 1
        if self.durability_journal is not None:
            self.durability_journal.log(
                "resource", {"username": username, "resource": resource})

    def resources_of(self, username: str) -> list[str]:
        return sorted(resource
                      for resource, users in self._resource_access.items()
                      if username in users)

    def users_of(self, resource: str) -> dict[str, int]:
        return dict(self._resource_access.get(resource, {}))

    def all_resources(self) -> list[str]:
        return sorted(self._resource_access)
