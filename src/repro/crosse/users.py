"""User accounts for the CroSSE social knowledge platform."""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import UnknownUserError


@dataclass
class User:
    """A registered platform user.

    ``declared_interests`` are the "exploration emphasis she has
    declared" of Section I-B(b); actual behaviour is tracked separately
    by :mod:`repro.crosse.context`.
    """

    username: str
    display_name: str = ""
    affiliation: str = ""
    declared_interests: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.username:
            raise ValueError("username must be non-empty")
        if not self.display_name:
            self.display_name = self.username


class UserRegistry:
    """Registry of platform users, keyed by username."""

    def __init__(self) -> None:
        self._users: dict[str, User] = {}
        #: Durability hook (duck-typed), set by an attached
        #: :class:`repro.durability.DurabilityManager`.
        self.durability_journal = None

    def register(self, username: str, display_name: str = "",
                 affiliation: str = "",
                 declared_interests: list[str] | None = None) -> User:
        if username in self._users:
            raise ValueError(f"user {username!r} already registered")
        user = User(username, display_name, affiliation,
                    list(declared_interests or []))
        self._users[username] = user
        if self.durability_journal is not None:
            self.durability_journal.log(
                "user", {"username": username,
                         "display_name": user.display_name,
                         "affiliation": affiliation,
                         "interests": user.declared_interests})
        return user

    def get(self, username: str) -> User:
        try:
            return self._users[username]
        except KeyError:
            raise UnknownUserError(
                f"no user named {username!r}") from None

    def __contains__(self, username: str) -> bool:
        return username in self._users

    def __len__(self) -> int:
        return len(self._users)

    def usernames(self) -> list[str]:
        return sorted(self._users)

    def users(self) -> list[User]:
        return [self._users[name] for name in self.usernames()]
