"""Exception hierarchy for the CroSSE platform layer."""

from __future__ import annotations


class CrosseError(Exception):
    """Base class for platform-level errors."""


class UnknownUserError(CrosseError):
    """The referenced user is not registered."""


class AnnotationError(CrosseError):
    """Invalid annotation (e.g. integrated-scenario subject not in data)."""


class StatementError(CrosseError):
    """Unknown or inaccessible statement ids."""
