"""Peer discovery and peer-driven data recommendation (Section I-B(b)).

* *Peer recommendation*: locate users with similar interests by cosine
  similarity over context profiles; the peer network is a weighted
  graph (networkx) thresholded on similarity.
* *Data recommendation*: resources explored by peers within similar
  contexts, scored by peer similarity x access frequency, excluding
  what the user already knows.
"""

from __future__ import annotations

import networkx as nx

from .context import ContextTracker


class PeerRecommender:
    """Builds the peer network and answers recommendation queries."""

    def __init__(self, tracker: ContextTracker,
                 similarity_threshold: float = 0.1) -> None:
        self.tracker = tracker
        self.similarity_threshold = similarity_threshold

    # -- peer network ---------------------------------------------------------

    def similarity(self, user_a: str, user_b: str) -> float:
        return self.tracker.profile(user_a).cosine_similarity(
            self.tracker.profile(user_b))

    def peer_network(self) -> nx.Graph:
        """Weighted similarity graph over all profiled users."""
        graph = nx.Graph()
        profiles = self.tracker.profiles()
        for profile in profiles:
            graph.add_node(profile.username)
        for index, left in enumerate(profiles):
            for right in profiles[index + 1:]:
                weight = left.cosine_similarity(right)
                if weight >= self.similarity_threshold:
                    graph.add_edge(left.username, right.username,
                                   weight=weight)
        return graph

    def recommend_peers(self, username: str,
                        count: int = 5) -> list[tuple[str, float]]:
        """The most similar other users, best first."""
        me = self.tracker.profile(username)
        scored = []
        for profile in self.tracker.profiles():
            if profile.username == username:
                continue
            similarity = me.cosine_similarity(profile)
            if similarity > 0.0:
                scored.append((profile.username, similarity))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:count]

    def communities(self) -> list[set[str]]:
        """Connected components of the peer network (interest groups)."""
        return [set(component)
                for component in nx.connected_components(
                    self.peer_network())]

    # -- data recommendation ------------------------------------------------------

    def recommend_resources(self, username: str,
                            count: int = 5) -> list[tuple[str, float]]:
        """Resources used by similar peers that *username* has not seen."""
        mine = set(self.tracker.resources_of(username))
        peer_similarity = dict(self.recommend_peers(username, count=50))
        scored: dict[str, float] = {}
        for resource in self.tracker.all_resources():
            if resource in mine:
                continue
            score = 0.0
            for peer, accesses in self.tracker.users_of(resource).items():
                similarity = peer_similarity.get(peer, 0.0)
                score += similarity * accesses
            if score > 0.0:
                scored[resource] = score
        ranked = sorted(scored.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:count]
