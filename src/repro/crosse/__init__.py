"""CroSSE platform services: users, tagging, sharing, context,
recommendations and previews (Sections I-B, III of the paper)."""

from .context import ContextProfile, ContextTracker
from .errors import (AnnotationError, CrosseError, StatementError,
                     UnknownUserError)
from .kb import (KnowledgeBaseStore, Reference, StatementRecord)
from .platform import CrossePlatform
from .preview import Document, extract_snippet, highlight_concepts, preview
from .ranking import rank_documents, rank_result, score_concepts
from .recommend import PeerRecommender
from .tagging import SemanticTaggingModule
from .users import User, UserRegistry

__all__ = [
    "CrossePlatform", "User", "UserRegistry",
    "KnowledgeBaseStore", "StatementRecord", "Reference",
    "SemanticTaggingModule", "ContextProfile", "ContextTracker",
    "PeerRecommender", "Document", "extract_snippet",
    "highlight_concepts", "preview", "rank_result", "rank_documents",
    "score_concepts",
    "CrosseError", "UnknownUserError", "AnnotationError", "StatementError",
]
