"""The CroSSE platform facade (Figs. 1-2).

One object wires the Main Platform (relational databank), the Semantic
Platform (per-user knowledge bases + tagging), the SESQL engine, context
tracking, recommendations and previews.  Every SESQL query a user poses
is evaluated in the context of her *effective* knowledge base (own +
accepted statements), and automatically feeds her activity profile.
"""

from __future__ import annotations

import threading
import weakref

from ..api.options import QueryOptions
from ..api.session import PlatformSession, Session
from ..core.engine import SESQLResult
from ..core.mapping import ResourceMapping
from ..core.stored_queries import StoredQueryRegistry
from ..relational.engine import Database
from .context import ContextTracker
from .kb import KnowledgeBaseStore, Reference, StatementRecord
from .preview import Document, preview as build_preview
from .ranking import rank_documents, rank_result
from .recommend import PeerRecommender
from .tagging import SemanticTaggingModule
from .users import User, UserRegistry


class CrossePlatform:
    """The social knowledge platform around a databank."""

    def __init__(self, databank: Database,
                 mapping: ResourceMapping | None = None,
                 durability=None, telemetry=None) -> None:
        self.databank = databank
        self.mapping = mapping or ResourceMapping()
        #: Durability hook (duck-typed) for platform-level records
        #: (stored queries, documents); set by an attached manager.
        self.durability_journal = None
        #: The attached :class:`repro.durability.DurabilityManager`
        #: (None = durability off, the default).
        self.durability = None
        #: The :class:`repro.telemetry.Telemetry` bundle (None = off,
        #: the default).  Enabled *before* durability so recovery and
        #: the WAL are metered from the first write.
        self.telemetry = None
        self.users = UserRegistry()
        self.statements = KnowledgeBaseStore()
        self.tagging = SemanticTaggingModule(
            databank, self.statements, self.mapping)
        self.context = ContextTracker()
        self.recommender = PeerRecommender(self.context)
        self.stored_queries = StoredQueryRegistry()
        self._user_queries: dict[str, StoredQueryRegistry] = {}
        self.documents: dict[str, Document] = {}
        self._session: PlatformSession | None = None
        #: Every live session handed out (shared + custom-options ones),
        #: so KB/registry invalidation reaches all cached user engines.
        #: Weak references: an abandoned custom-options session is
        #: garbage-collected instead of accumulating forever.  Guarded
        #: by ``_sessions_lock``: a pool thread building a slot
        #: (``connect`` appends) races the invalidation rebuild
        #: otherwise, and a lost weakref means a session that never
        #: sees KB invalidations again.
        self._sessions: list[weakref.ref[PlatformSession]] = []
        self._sessions_lock = threading.Lock()
        if telemetry is not None:
            self.enable_telemetry(telemetry)
        if durability is not None:
            self.enable_durability(durability)

    # -- telemetry -----------------------------------------------------------

    def enable_telemetry(self, spec=True):
        """Switch on metrics + tracing + the slow-query log.

        *spec* is anything :func:`repro.telemetry.create_telemetry`
        accepts (``True``, :class:`~repro.telemetry.TelemetryOptions`,
        or a shared :class:`~repro.telemetry.Telemetry` bundle).  The
        bundle is pushed through the databank and every cached per-user
        engine (existing sessions are invalidated so they pick it up on
        their next query), and an already-attached durability manager
        starts metering its WAL and snapshots.  Returns the bundle.
        """
        from ..telemetry import create_telemetry
        telemetry = create_telemetry(spec)
        self.telemetry = telemetry
        attach = getattr(self.databank, "attach_telemetry", None)
        if attach is not None:
            attach(telemetry)
        if self.durability is not None:
            self.durability.attach_telemetry(telemetry)
        # Cached per-user sessions hold engines built before the switch;
        # a lazy rebuild re-attaches through PlatformSession._build.
        self._invalidate_sessions()
        return telemetry

    # -- durability ----------------------------------------------------------

    def enable_durability(self, options):
        """Attach a WAL + snapshot manager and recover prior state.

        *options* is a :class:`repro.durability.DurabilityOptions` (or
        an already-constructed manager).  The databank and every piece
        of platform state (users, statements, context, stored queries,
        documents) become durable; recovery runs immediately, so a
        platform constructed over an existing durability directory
        comes back with its pre-crash state.
        """
        from ..durability import DurabilityManager
        if self.durability is not None:
            raise RuntimeError("durability is already enabled")
        manager = (options if isinstance(options, DurabilityManager)
                   else DurabilityManager(options))
        manager.attach_database(self.databank)
        manager.attach_platform(self)
        if self.telemetry is not None:
            # Before recover(): the recovery WAL writer is metered too.
            manager.attach_telemetry(self.telemetry)
        manager.recover()
        self.durability = manager
        return manager

    # -- users ---------------------------------------------------------------

    def register_user(self, username: str, display_name: str = "",
                      affiliation: str = "",
                      interests: list[str] | None = None) -> User:
        user = self.users.register(username, display_name, affiliation,
                                   interests)
        if interests:
            self.context.record_concepts(username, interests,
                                         event="declare")
        return user

    # -- stored SPARQL queries ---------------------------------------------------

    def register_stored_query(self, name: str, sparql: str,
                              username: str | None = None,
                              description: str = "") -> None:
        """Register a stored query globally or for one user."""
        if username is None:
            self.stored_queries.register(name, sparql, description)
        else:
            self.users.get(username)
            registry = self._user_queries.setdefault(
                username, StoredQueryRegistry())
            registry.register(name, sparql, description)
        if self.durability_journal is not None:
            self.durability_journal.log(
                "stored_query", {"name": name, "sparql": sparql,
                                 "username": username,
                                 "description": description})
        # Cached engines carry a merged registry snapshot; rebuild lazily.
        self._invalidate_sessions(username)

    def _registry_for(self, username: str) -> StoredQueryRegistry:
        merged = self.stored_queries.copy()
        personal = self._user_queries.get(username)
        if personal is not None:
            for name in personal.names():
                stored = personal.get(name)
                merged.register(stored.name, stored.text,
                                stored.description)
        return merged

    # -- querying (contextualised) --------------------------------------------------

    def connect(self, options: QueryOptions | None = None) -> PlatformSession:
        """The platform's session factory (``.as_user(name)``).

        With no *options* the shared default session is returned; with
        options a new, independent session is created.  Either way one
        engine per user is cached across calls, and KB mutations
        (acceptance, annotation) and stored-query registration
        invalidate the affected entries in every session handed out.
        """
        with self._sessions_lock:
            if options is None:
                if self._session is None or self._session.closed:
                    self._session = PlatformSession(self)
                    self._sessions.append(weakref.ref(self._session))
                return self._session
            session = PlatformSession(self, options)
            self._sessions.append(weakref.ref(session))
            return session

    def session_for(self, username: str) -> Session:
        """Shorthand for ``connect().as_user(username)``."""
        return self.connect().as_user(username)

    def _invalidate_sessions(self, username: str | None = None) -> None:
        with self._sessions_lock:
            alive: list[weakref.ref[PlatformSession]] = []
            for ref in self._sessions:
                session = ref()
                if session is not None and not session.closed:
                    session.invalidate(username)
                    alive.append(ref)
            self._sessions = alive

    def run_sesql(self, username: str, sesql: str,
                  include_original: bool = False,
                  join_strategy: str = "tempdb") -> SESQLResult:
        """Run a SESQL query in the user's personal context.

        Delegates to the cached per-user session, so repeated calls
        reuse one engine (and its plan/extraction caches) instead of
        rebuilding the stack per query; context feeding is unchanged.
        """
        return self.session_for(username).execute(
            sesql, include_original=include_original,
            join_strategy=join_strategy)

    def _feed_context(self, username: str, outcome: SESQLResult) -> None:
        concepts = []
        for enrichment in outcome.enriched.enrichments:
            concepts.append(getattr(enrichment, "prop", None))
            concepts.append(getattr(enrichment, "concept", None))
        self.context.record_concepts(
            username, [concept for concept in concepts if concept],
            event="query")

    # -- annotation (all three scenarios) -----------------------------------------------

    def annotate_concept(self, username: str, table: str, column: str,
                         value: str, prop, obj,
                         reference: Reference | None = None
                         ) -> StatementRecord:
        self.users.get(username)
        record = self.tagging.annotate_concept(
            username, table, column, value, prop, obj, reference)
        self.context.record_concepts(username, [value], event="annotate")
        self._invalidate_sessions(username)
        return record

    def annotate_free(self, username: str, subject, prop, obj,
                      reference: Reference | None = None
                      ) -> StatementRecord:
        self.users.get(username)
        record = self.tagging.annotate_free(
            username, subject, prop, obj, reference)
        self._invalidate_sessions(username)
        return record

    def explore_annotations(self, username: str, **filters):
        self.users.get(username)
        return self.tagging.explore_annotations(username, **filters)

    def accept_statement(self, username: str,
                         statement_id: int) -> StatementRecord:
        self.users.get(username)
        record = self.statements.accept(username, statement_id)
        self._invalidate_sessions(username)
        return record

    def retract_statement(self, username: str, statement_id: int) -> None:
        """Withdraw one's own statement platform-wide.

        The statement leaves the author's context *and* the effective
        KB of every user who had accepted it, so all their cached
        engines are invalidated too.
        """
        self.users.get(username)
        record = self.statements.get(statement_id)
        affected = {record.author, *record.accepted_by}
        self.statements.retract(username, statement_id)
        for affected_user in affected:
            self._invalidate_sessions(affected_user)

    def reject_statement(self, username: str, statement_id: int) -> None:
        """Drop a previously accepted peer statement from one's context."""
        self.users.get(username)
        self.statements.reject(username, statement_id)
        self._invalidate_sessions(username)

    def effective_kb(self, username: str):
        return self.statements.effective_kb(username)

    # -- exploration / recommendation services -----------------------------------------

    def record_exploration(self, username: str, resource: str,
                           concepts: list[str] | None = None) -> None:
        self.context.record_resource(username, resource)
        if concepts:
            self.context.record_concepts(username, concepts,
                                         event="explore")

    def recommend_peers(self, username: str, count: int = 5):
        self.users.get(username)
        return self.recommender.recommend_peers(username, count)

    def recommend_resources(self, username: str, count: int = 5):
        self.users.get(username)
        return self.recommender.recommend_resources(username, count)

    # -- documents & previews --------------------------------------------------------------

    def add_document(self, doc_id: str, title: str, text: str,
                     tags: list[str] | None = None) -> Document:
        document = Document(doc_id, title, text, list(tags or []))
        self.documents[doc_id] = document
        if self.durability_journal is not None:
            self.durability_journal.log(
                "document", {"doc_id": doc_id, "title": title,
                             "text": text, "tags": document.tags})
        return document

    def search_documents(self, username: str,
                         keyword: str) -> list[tuple[Document, float]]:
        """Keyword search with context-aware ranking."""
        profile = self.context.profile(username)
        matches = [document for document in self.documents.values()
                   if keyword.lower() in document.text.lower()
                   or keyword.lower() in document.title.lower()]
        return rank_documents(profile, matches)

    def preview_document(self, username: str, doc_id: str) -> dict:
        profile = self.context.profile(username)
        return build_preview(profile, self.documents[doc_id])

    def rank_result_for(self, username: str, result,
                        concept_columns: list[str] | None = None):
        profile = self.context.profile(username)
        return rank_result(profile, result, concept_columns)
