"""The semantic tagging module (Section III-A).

Three annotation scenarios:

* **Integrated**: the user annotates a concept she is currently viewing
  in the platform; the subject *must* be a value extracted from the
  original data source, which this module validates against the
  databank.
* **Independent**: free insertion of any ``<subject, property, object>``
  triple.
* **Crowdsourced**: annotations are public; peers explore them and
  import (accept) them into their own knowledge bases — implemented by
  :meth:`KnowledgeBaseStore.accept` and surfaced here via
  ``explore_annotations``.
"""

from __future__ import annotations

from ..core.mapping import ResourceMapping
from ..rdf.terms import Term
from ..relational.engine import Database
from .errors import AnnotationError
from .kb import KnowledgeBaseStore, Reference, StatementRecord


class SemanticTaggingModule:
    """Validates and records user annotations."""

    def __init__(self, databank: Database, statements: KnowledgeBaseStore,
                 mapping: ResourceMapping | None = None) -> None:
        self.databank = databank
        self.statements = statements
        self.mapping = mapping or ResourceMapping()

    # -- integrated scenario --------------------------------------------------

    def annotate_concept(self, username: str, table: str, column: str,
                         value: str, prop, obj,
                         reference: Reference | None = None,
                         public: bool = True) -> StatementRecord:
        """Integrated annotation: *value* must occur in table.column."""
        if not self._value_exists(table, column, value):
            raise AnnotationError(
                f"integrated annotation requires the subject to come from "
                f"the data source: {value!r} not found in "
                f"{table}.{column}")
        subject = self.mapping.to_term(column, value)
        return self.statements.insert(username, subject, prop, obj,
                                      public=public, reference=reference)

    def _value_exists(self, table_name: str, column: str,
                      value: str) -> bool:
        table = self.databank.table(table_name)
        position = table.schema.position_of(column)
        index = table.find_index_on([column])
        if index is not None:
            return bool(index.lookup((value,)))
        return any(row[position] == value for row in table.rows())

    # -- independent scenario ---------------------------------------------------

    def annotate_free(self, username: str, subject, prop, obj,
                      reference: Reference | None = None,
                      public: bool = True) -> StatementRecord:
        """Independent annotation: any triple the user believes."""
        return self.statements.insert(username, subject, prop, obj,
                                      public=public, reference=reference)

    def annotate_note(self, username: str, subject, note: str,
                      public: bool = False) -> StatementRecord:
        """A personal exploration note (Section III-A, annotation kind ii)."""
        from ..rdf.namespace import SMG
        return self.statements.insert(username, subject, SMG.note, note,
                                      public=public)

    # -- crowdsourced scenario -----------------------------------------------------

    def explore_annotations(self, username: str,
                            prop: Term | None = None,
                            author: str | None = None
                            ) -> list[StatementRecord]:
        """Browse peers' public annotations (optionally filtered)."""
        records = self.statements.public_statements(exclude_author=username)
        if prop is not None:
            records = [record for record in records
                       if record.triple.predicate == prop]
        if author is not None:
            records = [record for record in records
                       if record.author == author]
        return records

    def import_annotation(self, username: str,
                          statement_id: int) -> StatementRecord:
        """Accept a peer's statement into one's own knowledge base."""
        return self.statements.accept(username, statement_id)
