"""Context-aware ranking (Section I-B(a)/(c)).

Two users searching "pollution" should see results ordered differently:
ranking scores each result row (or document) by how strongly its
concepts overlap the user's context profile, with a content-relevance
base score so empty contexts degrade to content-only ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.result import ResultSet
from .context import ContextProfile
from .preview import Document


@dataclass
class RankedRow:
    row: tuple
    score: float


def score_concepts(profile: ContextProfile, concepts: list[str],
                   base: float = 0.0) -> float:
    """Sum of profile weights over *concepts* plus a base relevance."""
    return base + sum(profile.weight(concept) for concept in concepts
                      if concept)


def rank_result(profile: ContextProfile, result: ResultSet,
                concept_columns: list[str] | None = None) -> ResultSet:
    """Reorder a query result by context relevance (stable for ties).

    ``concept_columns`` names the columns whose values count as
    concepts; by default every TEXT-valued cell participates.
    """
    if concept_columns is None:
        indices = list(range(len(result.columns)))
    else:
        indices = [result.column_index(name) for name in concept_columns]
    scored: list[RankedRow] = []
    for row in result.rows:
        concepts = [str(row[i]) for i in indices
                    if row[i] is not None and isinstance(row[i], str)]
        scored.append(RankedRow(row, score_concepts(profile, concepts)))
    scored.sort(key=lambda ranked: -ranked.score)
    return ResultSet(result.columns, [ranked.row for ranked in scored])


def rank_documents(profile: ContextProfile,
                   documents: list["Document"]) -> list[tuple["Document", float]]:
    """Order documents by context overlap + keyword base relevance."""
    scored = []
    for document in documents:
        concepts = document.concepts()
        score = score_concepts(profile, concepts,
                               base=0.1 * len(concepts))
        scored.append((document, score))
    scored.sort(key=lambda item: -item[1])
    return scored
