"""Content previews: snippet extraction and key-concept highlighting
(Section I-B(c)).

Instead of a bare result list, the platform shows each document with a
snippet centred on the window containing the most context-relevant
concepts, with those concepts highlighted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .context import ContextProfile


@dataclass
class Document:
    """A searchable resource (report, dataset description, note)."""

    doc_id: str
    title: str
    text: str
    tags: list[str] = field(default_factory=list)

    def concepts(self) -> list[str]:
        """Concept candidates: tags plus capitalised terms in the text."""
        capitalised = re.findall(r"\b[A-Z][a-z]{2,}\b", self.text)
        return list(dict.fromkeys(self.tags + capitalised))


def _tokenize(text: str) -> list[tuple[str, int]]:
    """(word, start offset) pairs."""
    return [(match.group(0), match.start())
            for match in re.finditer(r"\S+", text)]


def extract_snippet(profile: ContextProfile, document: Document,
                    window_words: int = 30) -> str:
    """The window of *window_words* words with the highest context score.

    Falls back to the document head when nothing matches the profile.
    """
    tokens = _tokenize(document.text)
    if not tokens:
        return ""
    def token_weight(word: str) -> float:
        return profile.weight(word.strip(".,;:()\"'"))
    weights = [token_weight(word) for word, _offset in tokens]
    best_start, best_score = 0, -1.0
    for start in range(0, max(1, len(tokens) - window_words + 1)):
        score = sum(weights[start:start + window_words])
        if score > best_score:
            best_start, best_score = start, score
    begin = tokens[best_start][1]
    end_index = min(best_start + window_words, len(tokens)) - 1
    end_token, end_offset = tokens[end_index]
    end = end_offset + len(end_token)
    snippet = document.text[begin:end].strip()
    prefix = "... " if begin > 0 else ""
    suffix = " ..." if end < len(document.text) else ""
    return f"{prefix}{snippet}{suffix}"


def highlight_concepts(profile: ContextProfile, text: str,
                       marker: str = "**", minimum_weight: float = 0.5,
                       max_concepts: int = 8) -> str:
    """Wrap the user's strongest context concepts in *marker*."""
    strong = [concept for concept, weight in profile.top_concepts(
        max_concepts) if weight >= minimum_weight]
    highlighted = text
    for concept in strong:
        pattern = re.compile(rf"\b({re.escape(concept)})\b", re.IGNORECASE)
        highlighted = pattern.sub(rf"{marker}\1{marker}", highlighted)
    return highlighted


def preview(profile: ContextProfile, document: Document,
            window_words: int = 30) -> dict:
    """The full preview payload the UI would render for one result."""
    snippet = extract_snippet(profile, document, window_words)
    return {
        "doc_id": document.doc_id,
        "title": document.title,
        "snippet": highlight_concepts(profile, snippet),
        "key_concepts": [concept for concept, _w in profile.top_concepts(5)
                         if re.search(rf"\b{re.escape(concept)}\b",
                                      document.text, re.IGNORECASE)],
    }
