"""The canonical SESQL workload over the SmartGround databank.

``PAPER_EXAMPLES`` holds the six queries of Section IV verbatim (adapted
only in the literal landfill name, which the generator calls lf0000);
``WORKLOAD`` extends them with the exploration queries the introduction
motivates ("What is available where?", quality across landfills, ...).
Benchmarks iterate these so measured numbers correspond to concrete,
paper-anchored query shapes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadQuery:
    """A named SESQL query with its enrichment profile."""

    name: str
    sesql: str
    enrichment: str  # which strategy it exercises ('none' for plain SQL)


PAPER_EXAMPLES: list[WorkloadQuery] = [
    WorkloadQuery(
        "ex4.1-schema-extension",
        """SELECT elem_name, landfill_name
           FROM elem_contained
           WHERE landfill_name = 'lf0000'
           ENRICH SCHEMAEXTENSION( elem_name, dangerLevel)""",
        "SCHEMAEXTENSION"),
    WorkloadQuery(
        "ex4.2-schema-replacement",
        """SELECT name, city FROM landfill
           ENRICH SCHEMAREPLACEMENT(city, inCountry)""",
        "SCHEMAREPLACEMENT"),
    WorkloadQuery(
        "ex4.3-bool-extension",
        """SELECT elem_name FROM elem_contained
           WHERE landfill_name = 'lf0000'
           ENRICH BOOLSCHEMAEXTENSION( elem_name, isA, HazardousWaste)""",
        "BOOLSCHEMAEXTENSION"),
    WorkloadQuery(
        "ex4.4-bool-replacement",
        """SELECT name, city FROM landfill
           ENRICH BOOLSCHEMAREPLACEMENT(city, inCountry, Italy)""",
        "BOOLSCHEMAREPLACEMENT"),
    WorkloadQuery(
        "ex4.5-replace-constant",
        """SELECT landfill_name FROM elem_contained
           WHERE ${elem_name = HazardousWaste:cond1}
           ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)""",
        "REPLACECONSTANT"),
    WorkloadQuery(
        "ex4.6-replace-variable",
        """SELECT Elecond1.landfill_name AS l_name1,
                  Elecond2.landfill_name AS l_name2,
                  Elecond1.elem_name
           FROM elem_contained AS Elecond1, elem_contained AS Elecond2
           WHERE ${ Elecond1.elem_name <> Elecond2.elem_name:cond1} AND
                 Elecond1.landfill_name <> Elecond2.landfill_name
           ENRICH REPLACEVARIABLE(cond1, Elecond2.elem_name,
                                  oreAssemblage)""",
        "REPLACEVARIABLE"),
]

#: Plain-SQL twins of the enrichment queries (the E1 baseline): the same
#: relational work without the ENRICH clause.
SQL_BASELINES: dict[str, str] = {
    "ex4.1-schema-extension":
        """SELECT elem_name, landfill_name FROM elem_contained
           WHERE landfill_name = 'lf0000'""",
    "ex4.2-schema-replacement":
        "SELECT name, city FROM landfill",
    "ex4.3-bool-extension":
        """SELECT elem_name FROM elem_contained
           WHERE landfill_name = 'lf0000'""",
    "ex4.4-bool-replacement":
        "SELECT name, city FROM landfill",
    "ex4.5-replace-constant":
        """SELECT landfill_name FROM elem_contained
           WHERE elem_name = 'Mercury'""",
    "ex4.6-replace-variable":
        """SELECT Elecond1.landfill_name AS l_name1,
                  Elecond2.landfill_name AS l_name2,
                  Elecond1.elem_name
           FROM elem_contained AS Elecond1, elem_contained AS Elecond2
           WHERE Elecond1.elem_name = Elecond2.elem_name AND
                 Elecond1.landfill_name <> Elecond2.landfill_name""",
}

#: Exploration queries from the introduction's motivating questions.
EXPLORATION: list[WorkloadQuery] = [
    WorkloadQuery(
        "what-is-available-where",
        """SELECT elem_name, landfill_name, amount FROM elem_contained
           WHERE amount > 5.0
           ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)""",
        "SCHEMAEXTENSION"),
    WorkloadQuery(
        "quality-across-landfills",
        """SELECT elem_name, landfill_name, purity FROM elem_contained
           ORDER BY elem_name, purity DESC
           ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)""",
        "BOOLSCHEMAEXTENSION"),
    WorkloadQuery(
        "hazard-hotspots",
        """SELECT landfill_name, COUNT(*) AS hazards
           FROM elem_contained
           WHERE ${elem_name = HazardousWaste:cond1}
           GROUP BY landfill_name
           ORDER BY hazards DESC
           ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)""",
        "REPLACECONSTANT"),
    WorkloadQuery(
        "country-level-rollup",
        """SELECT name, city FROM landfill
           WHERE area_m2 > 50000
           ENRICH SCHEMAREPLACEMENT(city, inCountry)""",
        "SCHEMAREPLACEMENT"),
]

WORKLOAD: list[WorkloadQuery] = PAPER_EXAMPLES + EXPLORATION

DANGER_QUERY_SPARQL = """
PREFIX smg: <http://smartground.eu/ns#>
SELECT ?e WHERE { ?e smg:isA smg:HazardousWaste }
"""
