"""The SmartGround use case: schema, synthetic databank and ontologies.

Stands in for the (non-public) SmartGround EU project data described in
Sections I and III of the paper; see DESIGN.md §3 for the substitution
rationale.
"""

from .datagen import (CITIES, ELEMENTS, MINERALS, SmartGroundConfig,
                      generate_databank, material_names)
from .ontology import (ASSEMBLAGES, HAZARDOUS, assemblage_ontology,
                       city_planner_kb, geo_ontology, hazard_ontology,
                       lab_ontology, regulation_ontology, researcher_kb,
                       synthetic_kb)
from .queries import (DANGER_QUERY_SPARQL, EXPLORATION, PAPER_EXAMPLES,
                      SQL_BASELINES, WORKLOAD, WorkloadQuery)
from .schema import SCHEMA_SQL, TABLES, create_schema

__all__ = [
    "SmartGroundConfig", "generate_databank", "create_schema",
    "material_names", "CITIES", "ELEMENTS", "MINERALS",
    "hazard_ontology", "geo_ontology", "assemblage_ontology",
    "lab_ontology", "regulation_ontology", "researcher_kb",
    "city_planner_kb", "synthetic_kb", "HAZARDOUS", "ASSEMBLAGES",
    "PAPER_EXAMPLES", "EXPLORATION", "WORKLOAD", "SQL_BASELINES",
    "WorkloadQuery", "DANGER_QUERY_SPARQL", "SCHEMA_SQL", "TABLES",
]
