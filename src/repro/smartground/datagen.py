"""Seeded synthetic data for the SmartGround databank.

The production SmartGround databank (EU landfill inventories) is not
public; this generator reproduces its *shape*: landfills spread over
European cities, a periodic-table slice of elements and minerals,
skewed element-occurrence distributions (a few ubiquitous metals, a
long tail of rare ones), and lab analyses signed by technicians.  All
randomness flows from one seed, so every experiment is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..relational.engine import Database
from .schema import create_schema

#: (city, country) pairs used for landfill placement and geo ontologies.
CITIES: list[tuple[str, str]] = [
    ("Torino", "Italy"), ("Milano", "Italy"), ("Genova", "Italy"),
    ("Roma", "Italy"), ("Napoli", "Italy"),
    ("Lyon", "France"), ("Paris", "France"), ("Marseille", "France"),
    ("Lille", "France"),
    ("Madrid", "Spain"), ("Sevilla", "Spain"), ("Bilbao", "Spain"),
    ("Berlin", "Germany"), ("Essen", "Germany"), ("Leipzig", "Germany"),
    ("Katowice", "Poland"), ("Krakow", "Poland"),
    ("Ostrava", "Czechia"), ("Brno", "Czechia"),
    ("Gent", "Belgium"), ("Liege", "Belgium"),
    ("Ljubljana", "Slovenia"), ("Maribor", "Slovenia"),
    ("Athens", "Greece"), ("Thessaloniki", "Greece"),
]

#: (symbol, name, atomic number, is-metal); includes the paper's examples.
ELEMENTS: list[tuple[str, str, int, bool]] = [
    ("Hg", "Mercury", 80, True), ("Pb", "Lead", 82, True),
    ("Cd", "Cadmium", 48, True), ("As", "Arsenic", 33, False),
    ("Cr", "Chromium", 24, True), ("Ni", "Nickel", 28, True),
    ("Cu", "Copper", 29, True), ("Zn", "Zinc", 30, True),
    ("Fe", "Iron", 26, True), ("Al", "Aluminium", 13, True),
    ("Sn", "Tin", 50, True), ("Sb", "Antimony", 51, False),
    ("Co", "Cobalt", 27, True), ("Mn", "Manganese", 25, True),
    ("Ti", "Titanium", 22, True), ("V", "Vanadium", 23, True),
    ("W", "Tungsten", 74, True), ("Mo", "Molybdenum", 42, True),
    ("Ag", "Silver", 47, True), ("Au", "Gold", 79, True),
    ("Pt", "Platinum", 78, True), ("Pd", "Palladium", 46, True),
    ("Li", "Lithium", 3, True), ("Be", "Beryllium", 4, True),
    ("Ba", "Barium", 56, True), ("Se", "Selenium", 34, False),
    ("Tl", "Thallium", 81, True), ("U", "Uranium", 92, True),
    ("Nd", "Neodymium", 60, True), ("Ce", "Cerium", 58, True),
]

#: Minerals/compounds that appear alongside elements (Example 3.1 mentions
#: minerals and chemical compounds; Asbestos drives Section I-B's scenario).
MINERALS: list[str] = [
    "Asbestos", "Cinnabar", "Galena", "Sphalerite", "Pyrite",
    "Chalcopyrite", "Bauxite", "Magnetite", "Hematite", "Cassiterite",
    "Wolframite", "Monazite", "Fluorite", "Barite", "Gypsum",
]

LANDFILL_TYPES = ("urban", "mining", "industrial")

LAB_NAMES = ["ChemLab", "GeoAnalytica", "EnviroTest", "PoliTo-Lab",
             "EuroAssay", "TerraProbe", "WasteWatch", "MineralScan"]

FIRST_NAMES = ["Giulia", "Marco", "Elena", "Luca", "Anna", "Pierre",
               "Marie", "Hans", "Eva", "Jan", "Sofia", "Pavel"]
LAST_NAMES = ["Rossi", "Bianchi", "Dupont", "Muller", "Novak", "Kowalski",
              "Garcia", "Papadopoulos", "Ferrari", "Moreau"]


@dataclass
class SmartGroundConfig:
    """Size knobs for the synthetic databank."""

    n_landfills: int = 40
    n_materials: int = 30          # elements + minerals actually used
    avg_elements_per_landfill: int = 6
    n_labs: int = 4
    samples_per_landfill: int = 2
    analyses_per_sample: int = 3
    seed: int = 20180416           # ICDE 2018 opening day


def material_names(config: SmartGroundConfig) -> list[str]:
    """The element/mineral names the generator draws from."""
    pool = [name for _symbol, name, _z, _metal in ELEMENTS] + MINERALS
    return pool[:max(1, min(config.n_materials, len(pool)))]


def generate_databank(config: SmartGroundConfig | None = None,
                      db: Database | None = None) -> Database:
    """Create the schema and fill it with seeded synthetic data."""
    config = config or SmartGroundConfig()
    rng = random.Random(config.seed)
    database = create_schema(db)

    database.insert_rows("element", (
        {"symbol": symbol, "elem_name": name,
         "atomic_number": z, "metal": metal}
        for symbol, name, z, metal in ELEMENTS))

    labs = LAB_NAMES[:max(1, config.n_labs)]
    database.insert_rows("lab", (
        {"lab_name": lab, "city": rng.choice(CITIES)[0]} for lab in labs))

    materials = material_names(config)
    # Zipf-ish weights: early materials are far more common (iron,
    # aluminium dominate real landfills).
    weights = [1.0 / (rank + 1) for rank in range(len(materials))]

    landfill_rows = []
    contained_rows = []
    sample_rows = []
    analysis_rows = []
    sample_id = 0
    analysis_id = 0
    technicians = [f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
                   for _ in range(max(4, config.n_labs * 3))]

    for index in range(config.n_landfills):
        name = f"lf{index:04d}"
        city, _country = rng.choice(CITIES)
        landfill_rows.append({
            "id": index,
            "name": name,
            "city": city,
            "landfill_type": rng.choice(LANDFILL_TYPES),
            "area_m2": round(rng.uniform(5_000, 500_000), 1),
            "opened_year": rng.randint(1955, 2015),
        })
        count = max(1, min(len(materials), int(rng.gauss(
            config.avg_elements_per_landfill,
            config.avg_elements_per_landfill / 3))))
        chosen = _weighted_sample(rng, materials, weights, count)
        for material in chosen:
            contained_rows.append({
                "landfill_name": name,
                "elem_name": material,
                "amount": round(rng.lognormvariate(2.0, 1.2), 3),
                "purity": round(rng.uniform(0.05, 0.98), 3),
            })
        for _ in range(config.samples_per_landfill):
            sample_rows.append({
                "id": sample_id,
                "landfill_name": name,
                "depth_m": round(rng.uniform(0.5, 40.0), 2),
                "taken_year": rng.randint(2010, 2017),
            })
            for _ in range(config.analyses_per_sample):
                analysis_rows.append({
                    "id": analysis_id,
                    "sample_id": sample_id,
                    "lab_name": rng.choice(labs),
                    "elem_name": rng.choice(chosen),
                    "concentration": round(rng.lognormvariate(3.0, 1.5), 2),
                    "signed_by": rng.choice(technicians),
                })
                analysis_id += 1
            sample_id += 1

    database.insert_rows("landfill", landfill_rows)
    database.insert_rows("elem_contained", contained_rows)
    database.insert_rows("sample", sample_rows)
    database.insert_rows("analysis", analysis_rows)
    return database


def _weighted_sample(rng: random.Random, population: list[str],
                     weights: list[float], count: int) -> list[str]:
    """Weighted sampling without replacement."""
    chosen: list[str] = []
    candidates = list(zip(population, weights))
    for _ in range(min(count, len(candidates))):
        total = sum(weight for _item, weight in candidates)
        pick = rng.uniform(0, total)
        cumulative = 0.0
        for index, (item, weight) in enumerate(candidates):
            cumulative += weight
            if pick <= cumulative:
                chosen.append(item)
                candidates.pop(index)
                break
    return chosen
