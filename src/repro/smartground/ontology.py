"""Synthetic contextual ontologies for SmartGround users.

These generators produce the *personal knowledge* side of the paper:
hazard classifications (``isA HazardousWaste``, ``dangerLevel``),
geographic knowledge (``inCountry``, ``inContinent``), geological
co-occurrence (``oreAssemblage``), laboratory organisation (Example 3.1:
who signed an analysis and their role — knowledge the database schema
does not capture) and per-country regulation thresholds.

Each builder is deterministic in its seed; `researcher_kb` and
`city_planner_kb` compose them into the two personas of Section I-B
(same data, different contexts → different query answers).
"""

from __future__ import annotations

import random

from ..rdf.namespace import SMG
from ..rdf.store import TripleStore
from ..rdf.terms import Literal
from .datagen import (CITIES, FIRST_NAMES, LAB_NAMES, LAST_NAMES,
                      SmartGroundConfig, material_names)

#: Hazard knowledge: (material, danger level) — scientific consensus side.
HAZARDOUS: dict[str, str] = {
    "Mercury": "high", "Lead": "high", "Cadmium": "high",
    "Arsenic": "extreme", "Asbestos": "extreme", "Chromium": "mid",
    "Nickel": "mid", "Thallium": "extreme", "Uranium": "extreme",
    "Beryllium": "high", "Selenium": "mid", "Antimony": "mid",
}

#: Materials a city planner additionally flags (urban-planning context):
URBAN_CONCERNS: dict[str, str] = {
    "Zinc": "mid", "Copper": "low", "Barium": "mid", "Gypsum": "low",
}

#: Geological co-occurrence (oreAssemblage of Example 4.6).
ASSEMBLAGES: list[tuple[str, str]] = [
    ("Mercury", "Cinnabar"), ("Lead", "Galena"), ("Zinc", "Sphalerite"),
    ("Iron", "Pyrite"), ("Iron", "Magnetite"), ("Iron", "Hematite"),
    ("Copper", "Chalcopyrite"), ("Aluminium", "Bauxite"),
    ("Tin", "Cassiterite"), ("Tungsten", "Wolframite"),
    ("Neodymium", "Monazite"), ("Cerium", "Monazite"),
    ("Galena", "Sphalerite"), ("Pyrite", "Chalcopyrite"),
]

CONTINENTS: dict[str, str] = {
    "Italy": "Europe", "France": "Europe", "Spain": "Europe",
    "Germany": "Europe", "Poland": "Europe", "Czechia": "Europe",
    "Belgium": "Europe", "Slovenia": "Europe", "Greece": "Europe",
}


def hazard_ontology(store: TripleStore | None = None,
                    extra: dict[str, str] | None = None) -> TripleStore:
    """isA HazardousWaste + dangerLevel statements."""
    kb = store if store is not None else TripleStore()
    levels = dict(HAZARDOUS)
    if extra:
        levels.update(extra)
    for material, level in levels.items():
        kb.add(SMG[material], SMG.dangerLevel, Literal(level))
        if level in ("high", "extreme"):
            kb.add(SMG[material], SMG.isA, SMG.HazardousWaste)
        kb.add(SMG[material], SMG.isA, SMG.Material)
    return kb


def geo_ontology(store: TripleStore | None = None) -> TripleStore:
    """inCountry / inContinent for every generator city."""
    kb = store if store is not None else TripleStore()
    for city, country in CITIES:
        kb.add(SMG[city], SMG.inCountry, SMG[country])
    for country, continent in CONTINENTS.items():
        kb.add(SMG[country], SMG.inContinent, SMG[continent])
    return kb


def assemblage_ontology(store: TripleStore | None = None) -> TripleStore:
    """oreAssemblage pairs (symmetric closure)."""
    kb = store if store is not None else TripleStore()
    for left, right in ASSEMBLAGES:
        kb.add(SMG[left], SMG.oreAssemblage, SMG[right])
        kb.add(SMG[right], SMG.oreAssemblage, SMG[left])
    return kb


def lab_ontology(store: TripleStore | None = None,
                 n_labs: int = 4, seed: int = 7) -> TripleStore:
    """Example 3.1: lab hierarchies and the roles of report signers."""
    kb = store if store is not None else TripleStore()
    rng = random.Random(seed)
    roles = ["director", "senior-analyst", "analyst", "technician"]
    for lab in LAB_NAMES[:n_labs]:
        kb.add(SMG[lab], SMG.isA, SMG.Laboratory)
        people = [f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
                  for _ in range(3)]
        for person, role in zip(people, roles):
            person_iri = SMG[person.replace(" ", "_")]
            kb.add(person_iri, SMG.worksAt, SMG[lab])
            kb.add(person_iri, SMG.role, Literal(role))
    return kb


def regulation_ontology(store: TripleStore | None = None,
                        config: SmartGroundConfig | None = None,
                        seed: int = 11) -> TripleStore:
    """Per-country thresholds: maxAmount statements (Example 3.1's
    'local rules and regulations fixing thresholds')."""
    kb = store if store is not None else TripleStore()
    rng = random.Random(seed)
    config = config or SmartGroundConfig()
    countries = sorted({country for _city, country in CITIES})
    for material in HAZARDOUS:
        for country in countries:
            threshold = round(rng.uniform(0.5, 30.0), 2)
            rule = SMG[f"rule_{country}_{material}"]
            kb.add(rule, SMG.regulates, SMG[material])
            kb.add(rule, SMG.inForce, SMG[country])
            kb.add(rule, SMG.maxAmount, Literal(threshold))
    return kb


def researcher_kb(config: SmartGroundConfig | None = None) -> TripleStore:
    """The researcher persona: scientific hazard + geology + labs."""
    kb = TripleStore()
    hazard_ontology(kb)
    assemblage_ontology(kb)
    lab_ontology(kb, (config or SmartGroundConfig()).n_labs)
    geo_ontology(kb)
    return kb


def city_planner_kb(config: SmartGroundConfig | None = None) -> TripleStore:
    """The city-planner persona: urban-pollution interpretation.

    Same platform, different context (Section I-B): the planner accepts
    the consensus hazards *plus* urban concerns, and cares about
    geography and regulations rather than geology.
    """
    kb = TripleStore()
    hazard_ontology(kb, extra=URBAN_CONCERNS)
    geo_ontology(kb)
    regulation_ontology(kb, config)
    return kb


def synthetic_kb(n_triples: int, seed: int = 3) -> TripleStore:
    """A KB of roughly *n_triples* statements for scaling benchmarks.

    Subjects cycle through the material pool so enrichment joins hit;
    predicates cycle through a small realistic vocabulary.
    """
    rng = random.Random(seed)
    kb = TripleStore()
    materials = material_names(SmartGroundConfig(n_materials=45))
    predicates = [SMG.dangerLevel, SMG.note, SMG.relatedTo,
                  SMG.observedAt, SMG.tag]
    levels = ["low", "mid", "high", "extreme"]
    while len(kb) < n_triples:
        subject = SMG[rng.choice(materials)]
        predicate = rng.choice(predicates)
        if predicate == SMG.dangerLevel:
            kb.add(subject, predicate, Literal(rng.choice(levels)))
        elif predicate == SMG.relatedTo:
            kb.add(subject, predicate, SMG[rng.choice(materials)])
        else:
            kb.add(subject, predicate,
                   Literal(f"v{rng.randrange(10 * n_triples)}"))
    return kb
