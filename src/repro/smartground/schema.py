"""The SmartGround databank schema (the Fig. 3 fragment, completed).

The paper's figure shows tables for landfills and the elements, minerals
and chemical compounds they contain; the prose (Example 3.1) adds that
analyses are performed by labs whose organisation is *not* captured in
the schema — that knowledge lives in the users' contextual KBs.
"""

from __future__ import annotations

from ..relational.engine import Database

SCHEMA_SQL = """
CREATE TABLE landfill (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE,
    city TEXT,
    landfill_type TEXT,          -- 'urban' | 'mining' | 'industrial'
    area_m2 REAL,
    opened_year INTEGER
);

CREATE TABLE element (
    symbol TEXT PRIMARY KEY,
    elem_name TEXT NOT NULL UNIQUE,
    atomic_number INTEGER,
    metal BOOLEAN
);

CREATE TABLE elem_contained (
    landfill_name TEXT NOT NULL,
    elem_name TEXT NOT NULL,
    amount REAL,                 -- tonnes (estimated recoverable)
    purity REAL                  -- fraction in [0, 1]
);

CREATE TABLE lab (
    lab_name TEXT PRIMARY KEY,
    city TEXT
);

CREATE TABLE sample (
    id INTEGER PRIMARY KEY,
    landfill_name TEXT NOT NULL,
    depth_m REAL,
    taken_year INTEGER
);

CREATE TABLE analysis (
    id INTEGER PRIMARY KEY,
    sample_id INTEGER NOT NULL,
    lab_name TEXT NOT NULL,
    elem_name TEXT NOT NULL,
    concentration REAL,          -- mg/kg
    signed_by TEXT
);

CREATE INDEX idx_elem_contained_landfill ON elem_contained (landfill_name);
CREATE INDEX idx_elem_contained_elem ON elem_contained (elem_name);
CREATE INDEX idx_analysis_sample ON analysis (sample_id);
CREATE INDEX idx_sample_landfill ON sample (landfill_name);
"""

TABLES = ("landfill", "element", "elem_contained", "lab", "sample",
          "analysis")


def create_schema(db: Database | None = None) -> Database:
    """Create the SmartGround schema in *db* (or a fresh database)."""
    database = db or Database("smartground")
    database.execute_script(SCHEMA_SQL)
    return database
