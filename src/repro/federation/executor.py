"""Parallel fragment shipping for the mediator.

A mediated query touching *k* remote sources decomposes into per-source
sub-queries ("fragments").  The sources are independent, so shipping
them one after another pays *k* network round-trips where one would do:
this module gives the mediator a bounded worker pool that dispatches
**all fragments of all needed views at once**, with

* a **per-view reconciliation barrier** — a view's partial results are
  only reconciled (``union`` / ``prefer_first`` precedence) once every
  one of its fragments has landed, in the fragment-definition order, so
  parallel and serial shipping are byte-identical;
* **per-source failure policies** — ``fail`` (default: first error
  aborts the batch), ``skip`` (a failing source contributes no rows and
  is recorded in the :class:`~repro.federation.MediationReport`) and
  ``retry`` (re-dispatch with capped exponential backoff, escalating to
  a failure when the attempts are exhausted);
* a **fragment-result cache** keyed ``(source, fragment SQL, source
  data generation)`` — the generation is the source database's cheap
  mutation stamp, so repeated ships of unchanged sources are free and
  any DML/DDL on the source invalidates its entries by construction.
  Fragments touching foreign tables are never cached: their remote
  content can change without moving the local stamp.
"""

from __future__ import annotations

import contextvars
import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field

from ..api.cache import LRUCache
from ..relational.engine import Database
from ..relational.result import ResultSet
from .errors import MediationError

#: Per-source failure policies.
FAIL, SKIP, RETRY = "fail", "skip", "retry"
FAILURE_POLICIES = (FAIL, SKIP, RETRY)


@dataclass
class PolicyOutcome:
    """What :func:`run_with_policy` produced: a result or a final
    failure, plus how many executions it took to get there."""

    result: object = None
    attempts: int = 1
    error: str | None = None            # message of the final failure
    exception: Exception | None = None  # the final failure itself

    @property
    def failed(self) -> bool:
        return self.exception is not None


def run_with_policy(fn, *, policy: str = FAIL, max_retries: int = 2,
                    backoff_s: float = 0.05, backoff_cap_s: float = 1.0,
                    sleep=time.sleep) -> PolicyOutcome:
    """Run *fn* under a fail/skip/retry failure policy.

    ``retry`` re-runs with capped exponential backoff until the extra
    attempts are exhausted; any final failure is **returned** (never
    raised) so the caller decides whether its policy absorbs the error
    (``skip``) or escalates it (``fail`` / exhausted ``retry``).  Both
    the federation executor (per-source fragments) and the cluster
    coordinator (per-shard RPCs) route failures through here, so the
    two layers degrade identically.
    """
    delay = backoff_s
    attempts = 0
    while True:
        attempts += 1
        try:
            return PolicyOutcome(fn(), attempts)
        except Exception as exc:
            if policy == RETRY and attempts <= max_retries:
                sleep(delay)
                delay = min(delay * 2, backoff_cap_s)
                continue
            return PolicyOutcome(
                None, attempts, error=str(exc) or type(exc).__name__,
                exception=exc)


@dataclass(frozen=True)
class FederationOptions:
    """Knobs for parallel fragment shipping.

    ``max_workers=1`` degenerates to the serial shipping of earlier
    revisions (fragments run inline, in dispatch order) — the E13
    benchmark uses exactly that as its baseline.
    """

    #: Upper bound on concurrently in-flight fragments.
    max_workers: int = 8
    #: Default per-source policy; ``source_policies`` overrides per name.
    failure_policy: str = FAIL
    source_policies: dict[str, str] = field(default_factory=dict)
    #: Extra attempts under ``retry`` before escalating to a failure.
    max_retries: int = 2
    #: First retry delay; doubles per attempt up to ``backoff_cap_s``.
    backoff_s: float = 0.05
    backoff_cap_s: float = 1.0
    #: Entries in the fragment-result cache (0 disables it).
    fragment_cache_size: int = 128

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise MediationError("max_workers must be at least 1")
        if self.max_retries < 0:
            raise MediationError("max_retries must not be negative")
        if self.fragment_cache_size < 0:
            raise MediationError("fragment_cache_size must not be negative")
        for policy in (self.failure_policy,
                       *self.source_policies.values()):
            if policy not in FAILURE_POLICIES:
                raise MediationError(
                    f"unknown failure policy {policy!r} "
                    f"(expected one of {', '.join(FAILURE_POLICIES)})")

    def policy_for(self, source: str) -> str:
        return self.source_policies.get(source, self.failure_policy)

    def replace(self, **changes) -> "FederationOptions":
        return dataclasses.replace(self, **changes)


@dataclass
class FragmentJob:
    """One source sub-query to ship: view, position, source, SQL."""

    view: str
    index: int               # fragment position within the view
    source: str
    database: Database
    sql: str
    #: Safe for the generation-keyed cache (no foreign tables etc.).
    cacheable: bool = False


@dataclass
class FragmentResult:
    """What shipping one fragment produced."""

    job: FragmentJob
    result: ResultSet | None = None   # None => skipped under SKIP
    error: str | None = None          # the failure that caused a skip
    attempts: int = 1                 # source executions (0 = cache hit)
    elapsed_s: float = 0.0
    cached: bool = False

    @property
    def skipped(self) -> bool:
        return self.result is None


class _FragmentFailed(Exception):
    """Internal: carries the failing job through the future boundary."""

    def __init__(self, job: FragmentJob, cause: Exception,
                 attempts: int) -> None:
        super().__init__(str(cause))
        self.job = job
        self.cause = cause
        self.attempts = attempts


class FragmentCache(LRUCache):
    """Thread-safe LRU of fragment results.

    Keys are ``(source name, fragment SQL, source generation)``: a
    mutated source carries a new generation, so its stale entries are
    simply never looked up again and age out of the LRU.  The LRU
    itself is the session layer's :class:`~repro.api.cache.LRUCache`;
    this subclass only adds the lock worker threads need to probe and
    fill it concurrently.
    """

    def __init__(self, maxsize: int = 128) -> None:
        super().__init__(maxsize)
        self._lock = threading.Lock()

    def get(self, key: tuple) -> ResultSet | None:
        with self._lock:
            return super().get(key)

    def put(self, key: tuple, result: ResultSet) -> None:
        with self._lock:
            super().put(key, result)

    def clear(self) -> None:
        with self._lock:
            super().clear()

    def __len__(self) -> int:
        with self._lock:
            return super().__len__()


class FederationExecutor:
    """Ships fragment batches through a bounded worker pool."""

    def __init__(self, options: FederationOptions | None = None,
                 cache: FragmentCache | None = None) -> None:
        self.options = options or FederationOptions()
        self.cache = cache if cache is not None \
            else FragmentCache(self.options.fragment_cache_size)
        #: Telemetry hook (duck-typed): when attached, every shipped
        #: fragment records per-source latency/retry/skip/cache-hit
        #: metrics and opens a span under the originating query — the
        #: submitter copies its ``contextvars`` context per job, so
        #: worker-thread spans parent correctly.
        self.telemetry = None

    def attach_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry
        if telemetry is None:
            return
        metrics = telemetry.metrics
        self._tm_fragment_seconds = metrics.histogram(
            "repro_federation_fragment_seconds",
            "Per-source wall time of shipped fragments",
            labels=("source",))
        self._tm_retries = metrics.counter(
            "repro_federation_retries_total",
            "Fragment retry attempts beyond the first", labels=("source",))
        self._tm_skips = metrics.counter(
            "repro_federation_skips_total",
            "Fragments skipped under the skip policy", labels=("source",))
        self._tm_cache_hits = metrics.counter(
            "repro_federation_cache_hits_total",
            "Fragments served from the generation-keyed cache",
            labels=("source",))
        self._tm_rows = metrics.counter(
            "repro_federation_rows_total",
            "Rows fetched from each source", labels=("source",))

    def ship(self, jobs: list[FragmentJob]
             ) -> dict[str, list[FragmentResult]]:
        """Dispatch *jobs* concurrently; per-view results in fragment
        order.

        Every job runs under its source's failure policy.  Under
        ``fail`` (and exhausted ``retry``) the first failure cancels
        the not-yet-started remainder, waits out the in-flight ones and
        raises :class:`MediationError` naming the view, the source and
        the attempt count — the caller stores nothing, so no view is
        ever observable partially shipped.
        """
        if not jobs:
            return {}
        # Cache hits are resolved inline (a dict lookup each): a warm
        # batch spawns no threads, only the misses enter the pool.
        outcomes: list[FragmentResult] = []
        pending: list[FragmentJob] = []
        tel = self.telemetry
        for job in jobs:
            hit = self._probe_cache(job)
            if hit is not None:
                if tel is not None:
                    self._tm_cache_hits.labels(job.source).inc()
                outcomes.append(hit)
            else:
                pending.append(job)
        workers = min(self.options.max_workers, len(pending))
        if workers <= 1:
            # Serial path: inline, dispatch order, no threads — the
            # exact shipping behavior of earlier revisions.
            for job in pending:
                outcomes.append(self._guarded(job))
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                if tel is None:
                    futures = [pool.submit(self._run_job, job)
                               for job in pending]
                else:
                    # One context copy PER job: the copy carries the
                    # submitter's current span into the worker thread
                    # (a single Context cannot be entered concurrently).
                    futures = [
                        pool.submit(contextvars.copy_context().run,
                                    self._run_job, job)
                        for job in pending]
                try:
                    for future in as_completed(futures):
                        outcomes.append(future.result())
                except _FragmentFailed as failed:
                    for future in futures:
                        future.cancel()
                    raise self._failure_error(failed) from failed.cause
        grouped: dict[str, list[FragmentResult]] = {}
        for outcome in outcomes:
            grouped.setdefault(outcome.job.view, []).append(outcome)
        for results in grouped.values():
            results.sort(key=lambda outcome: outcome.job.index)
        return grouped

    def _guarded(self, job: FragmentJob) -> FragmentResult:
        try:
            return self._run_job(job)
        except _FragmentFailed as failed:
            raise self._failure_error(failed) from failed.cause

    @staticmethod
    def _failure_error(failed: _FragmentFailed) -> MediationError:
        job = failed.job
        return MediationError(
            f"view {job.view!r}: fragment from source {job.source!r} "
            f"failed after {failed.attempts} attempt(s): {failed.cause}")

    def _probe_cache(self, job: FragmentJob) -> FragmentResult | None:
        if not (job.cacheable and self.options.fragment_cache_size > 0):
            return None
        started = time.perf_counter()
        cached = self.cache.get(
            (job.source, job.sql, job.database.generation))
        if cached is None:
            return None
        return FragmentResult(
            job, cached, attempts=0,
            elapsed_s=time.perf_counter() - started, cached=True)

    def _run_job(self, job: FragmentJob) -> FragmentResult:
        """Execute one fragment, instrumented when telemetry is on."""
        tel = self.telemetry
        if tel is None:
            return self._execute_job(job)
        started = time.perf_counter()
        with tel.span("federation.fragment", source=job.source,
                      view=job.view) as span:
            outcome = self._execute_job(job)
            if span is not None:
                span.attrs["attempts"] = outcome.attempts
                if outcome.skipped:
                    span.attrs["skipped"] = True
                else:
                    span.attrs["rows"] = len(outcome.result)
        self._tm_fragment_seconds.labels(job.source).observe(
            time.perf_counter() - started)
        if outcome.attempts > 1:
            self._tm_retries.labels(job.source).inc(outcome.attempts - 1)
        if outcome.skipped:
            self._tm_skips.labels(job.source).inc()
        else:
            self._tm_rows.labels(job.source).inc(len(outcome.result))
        return outcome

    def _execute_job(self, job: FragmentJob) -> FragmentResult:
        """Execute one fragment under its source's policy.

        The cache was already probed inline by :meth:`ship`; a
        successful cacheable result is published under the generation
        read here, *before* executing — a concurrent write moves the
        stamp forward, so later lookups (always on the current stamp)
        can never hit a pre-write entry.
        """
        started = time.perf_counter()
        use_cache = job.cacheable and self.options.fragment_cache_size > 0
        if use_cache:
            key = (job.source, job.sql, job.database.generation)
        policy = self.options.policy_for(job.source)
        outcome = run_with_policy(
            lambda: job.database.query(job.sql), policy=policy,
            max_retries=self.options.max_retries,
            backoff_s=self.options.backoff_s,
            backoff_cap_s=self.options.backoff_cap_s)
        if outcome.failed:
            if policy == SKIP:
                return FragmentResult(
                    job, None, error=outcome.error,
                    attempts=outcome.attempts,
                    elapsed_s=time.perf_counter() - started)
            raise _FragmentFailed(job, outcome.exception,
                                  outcome.attempts) from outcome.exception
        result = outcome.result
        if use_cache:
            self.cache.put(key, result)
        return FragmentResult(
            job, result, attempts=outcome.attempts,
            elapsed_s=time.perf_counter() - started)
