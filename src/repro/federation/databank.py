"""A mediated global schema, usable anywhere a Database is expected.

:class:`MediatedDatabank` is a :class:`~repro.relational.Database`
whose tables are the mediator's global views: before executing any
SELECT it ships the views the statement references (through its
embedded :class:`~repro.federation.MediatorSession`, with
materialization reuse), then runs the statement locally.  That makes
federated sources composable with every layer built on the Database
protocol — most importantly the SESQL engine::

    session = repro.connect(mediator.as_databank(), knowledge_base=kb,
                            telemetry=TelemetryOptions())

gives a SESQL session whose FROM tables are mediated views: one query
produces one span tree covering parse → extraction → fragment shipping
(per-source child spans) → local execution → combine.
"""

from __future__ import annotations

from ..relational import ast as sql_ast
from ..relational.engine import Database
from ..relational.result import Cursor
from .executor import FederationOptions
from .mediator import MediationReport, Mediator, MediatorSession


class MediatedDatabank(Database):
    """A Database whose base tables are mediated global views."""

    def __init__(self, mediator: Mediator,
                 options: FederationOptions | None = None,
                 name: str = "mediated") -> None:
        super().__init__(name)
        #: The embedded session: owns view materialization state and
        #: uses *this* database as its scratch store, so mediated views
        #: live next to any local/temp tables callers create here.
        self.session = MediatorSession(mediator, options, scratch=self)
        #: The :class:`MediationReport` of the most recent shipping
        #: pass (view pruning, per-source timings, warnings).
        self.last_report: MediationReport | None = None

    @property
    def mediator(self) -> Mediator:
        return self.session.mediator

    def attach_telemetry(self, telemetry) -> None:
        super().attach_telemetry(telemetry)
        # The session guards against re-attaching its scratch (= self),
        # so this cascade terminates.
        self.session.attach_telemetry(telemetry)

    def refresh(self, views: list[str] | None = None) -> None:
        """Drop cached view materializations (see MediatorSession)."""
        self.session.refresh(views)

    # -- query paths: ship views, then run locally ----------------------

    def _ship_for(self, statement: sql_ast.SelectQuery | None,
                  pushdown: bool) -> list[str]:
        report = MediationReport()
        partial = self.session._ship_parsed(statement, None, pushdown,
                                            report)
        self.last_report = report
        return partial

    def execute_ast(self, stmt: sql_ast.Statement):
        if not isinstance(stmt, sql_ast.SelectQuery):
            return super().execute_ast(stmt)
        partial = self._ship_for(stmt, pushdown=True)
        try:
            return super().execute_ast(stmt)
        finally:
            self.session._drop_partials(partial)

    def stream_ast(self, query: sql_ast.SelectQuery) -> Cursor:
        # Ship BEFORE opening the stream: materialization stores views
        # under the write lock, which the streaming read hold (taken
        # eagerly by the base class) would deadlock against.  Pushdown
        # is off for the same reason as MediatorSession.stream — a
        # filtered partial must not outlive this cursor under the
        # view's name.
        partial = self._ship_for(query, pushdown=False)
        try:
            cursor = super().stream_ast(query)
        except BaseException:
            self.session._drop_partials(partial)
            raise
        if not partial:
            return cursor
        inner = cursor

        def cleanup() -> None:
            inner.close()
            self.session._drop_partials(partial)

        return Cursor(inner.columns, inner, on_close=cleanup)

    def explain(self, target, analyze: bool = False):
        from ..relational.parser import parse_sql
        stmt = parse_sql(target) if isinstance(target, str) else target
        partial = self._ship_for(
            stmt if isinstance(stmt, sql_ast.SelectQuery) else None,
            pushdown=False)
        try:
            return super().explain(stmt, analyze)
        finally:
            self.session._drop_partials(partial)
