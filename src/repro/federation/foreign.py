"""Foreign data wrappers — the ``postgres_fdw`` stand-in.

The paper integrates the Main Platform and the Semantic Platform's data
sources "by means of RESTful APIs, while the communication between data
sources relies on the postgres_fdw extension".  A
:class:`ForeignTable` makes a remote relation (another in-process
:class:`~repro.relational.engine.Database`, a CSV file, a REST endpoint
or any row callable) appear as a local table of the catalog: scans
delegate to the remote source at query time (``live`` mode) or read a
materialised copy (``snapshot`` mode).

An optional per-scan latency simulates the network hop so federation
benchmarks (E7) measure a realistic remote penalty.
"""

from __future__ import annotations

import csv
import io
import time
from typing import Any, Callable, Iterable, Iterator

from ..core.tempdb import infer_column_type
from ..relational.engine import Database
from ..relational.schema import Column, TableSchema
from ..relational.types import DataType, coerce_value
from .errors import ForeignTableError


class ForeignSource:
    """A remote relation: schema plus a row supplier."""

    def schema(self) -> TableSchema:
        raise NotImplementedError

    def rows(self) -> Iterable[tuple]:
        raise NotImplementedError


class RemoteTableSource(ForeignSource):
    """A table living in another Database instance (the fdw analogue)."""

    def __init__(self, database: Database, table_name: str) -> None:
        self.database = database
        self.table_name = table_name

    def schema(self) -> TableSchema:
        return self.database.table(self.table_name).schema

    def rows(self) -> Iterable[tuple]:
        return self.database.table(self.table_name).rows()


class QuerySource(ForeignSource):
    """A remote *query* exposed as a relation (a remote view)."""

    def __init__(self, database: Database, sql: str,
                 name: str = "remote_view") -> None:
        self.database = database
        self.sql = sql
        self.name = name
        self._schema: TableSchema | None = None

    def schema(self) -> TableSchema:
        # Deriving the schema needs a full remote execution (column
        # types come from the data), so it is computed once and cached:
        # attaching the view must not cost an extra remote round-trip
        # on every schema consultation.
        if self._schema is None:
            result = self.database.query(self.sql)
            columns = []
            for index, column_name in enumerate(result.columns):
                values = [row[index] for row in result.rows]
                columns.append(Column(column_name, _infer(values)))
            self._schema = TableSchema(self.name, columns)
        return self._schema

    def rows(self) -> Iterable[tuple]:
        return self.database.query(self.sql).rows


class CsvSource(ForeignSource):
    """CSV text/file as a relation; types inferred from the data."""

    def __init__(self, text: str, name: str = "csv") -> None:
        self.name = name
        #: Original CSV text, kept so a durability descriptor can
        #: rebuild this source verbatim at recovery.
        self.text = text
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration:
            raise ForeignTableError("CSV source has no header row")
        raw_rows = [row for row in reader if row]
        parsed: list[tuple] = []
        for raw in raw_rows:
            if len(raw) != len(header):
                raise ForeignTableError(
                    f"CSV row has {len(raw)} fields, expected {len(header)}")
            parsed.append(tuple(_parse_csv_value(value) for value in raw))
        self._header = header
        self._rows = parsed

    @classmethod
    def from_file(cls, path: str, name: str | None = None) -> "CsvSource":
        with open(path, "r", encoding="utf-8") as handle:
            return cls(handle.read(), name or path)

    def schema(self) -> TableSchema:
        columns = []
        for index, column_name in enumerate(self._header):
            values = [row[index] for row in self._rows]
            columns.append(Column(column_name, _infer(values)))
        return TableSchema(self.name, columns)

    def rows(self) -> Iterable[tuple]:
        return list(self._rows)


class CallableSource(ForeignSource):
    """Rows supplied by a callable (e.g. wrapping a REST endpoint)."""

    def __init__(self, schema: TableSchema,
                 supplier: Callable[[], Iterable[tuple]]) -> None:
        self._schema = schema
        self._supplier = supplier

    def schema(self) -> TableSchema:
        return self._schema

    def rows(self) -> Iterable[tuple]:
        return self._supplier()


def _parse_csv_value(text: str) -> Any:
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _infer(values: list) -> DataType:
    """The narrowest DataType holding *every* non-null value.

    Widened across the whole column — a mixed ``1`` / ``2.5`` column is
    REAL, not the INTEGER its first value suggests (which would make
    every scan raise on the ``2.5``); any non-numeric value forces
    TEXT.  Delegates to the SESQL temp-table inference so there is one
    widening ladder to maintain.
    """
    return infer_column_type(values)


class ForeignTable:
    """A read-only catalog entry backed by a ForeignSource.

    Duck-types the parts of :class:`~repro.relational.table.Table` the
    read path uses; every mutation raises.
    """

    def __init__(self, name: str, source: ForeignSource,
                 mode: str = "live", latency_s: float = 0.0) -> None:
        if mode not in ("live", "snapshot"):
            raise ForeignTableError(f"unknown foreign mode {mode!r}")
        remote_schema = source.schema()
        self.schema = TableSchema(name, list(remote_schema.columns))
        self.source = source
        self.mode = mode
        self.latency_s = latency_s
        self.indexes: dict = {}
        self.scan_count = 0
        self._snapshot: list[tuple] | None = None
        if mode == "snapshot":
            self._snapshot = [self._coerce(row) for row in source.rows()]

    @property
    def name(self) -> str:
        return self.schema.name

    def _coerce(self, row: tuple) -> tuple:
        return tuple(
            coerce_value(value, column.data_type)
            for value, column in zip(row, self.schema.columns))

    def rows(self) -> Iterator[tuple]:
        # Snapshot scans read the local copy: like __len__, they are
        # not remote hits and charge no latency or scan_count.
        if self._snapshot is not None:
            return iter(list(self._snapshot))
        self.scan_count += 1
        if self.latency_s > 0:
            time.sleep(self.latency_s)
        return iter([self._coerce(row) for row in self.source.rows()])

    def refresh(self) -> None:
        """Re-pull the snapshot (no-op in live mode)."""
        if self.mode == "snapshot":
            self._snapshot = [self._coerce(row)
                              for row in self.source.rows()]

    def __len__(self) -> int:
        # In snapshot mode the count is served from the local copy —
        # no remote hop, no accounting.  In live mode a cardinality
        # probe is a real remote query, so it pays the same latency
        # and scan_count bookkeeping as rows(): probes must not
        # re-execute remote sources invisibly.
        if self._snapshot is not None:
            return len(self._snapshot)
        self.scan_count += 1
        if self.latency_s > 0:
            time.sleep(self.latency_s)
        return sum(1 for _row in self.source.rows())

    def find_index_on(self, column_names) -> None:
        return None  # remote indexes are not visible locally

    # -- read-only guard rails ------------------------------------------------

    def _read_only(self, *args, **kwargs):
        raise ForeignTableError(
            f"foreign table {self.name!r} is read-only")

    # UPDATE/DELETE scan via rows_with_ids before mutating, so guard it too.
    rows_with_ids = _read_only
    insert_row = _read_only
    insert_tuple = _read_only
    update_row = _read_only
    delete_row = _read_only
    truncate = _read_only
    create_index = _read_only
    drop_index = _read_only


def describe_source(source: ForeignSource) -> dict:
    """A JSON-able descriptor of a foreign source for the WAL.

    Only CSV sources embed their data (the text is self-contained);
    remote/query/callable sources record their identity and are
    re-resolved by the caller at recovery — a replay must never re-run
    a remote fetch as if it were local history.
    """
    if isinstance(source, CsvSource):
        return {"kind": "csv", "name": source.name, "text": source.text}
    if isinstance(source, QuerySource):
        return {"kind": "query", "name": source.name, "sql": source.sql}
    if isinstance(source, RemoteTableSource):
        return {"kind": "remote", "table": source.table_name}
    return {"kind": "callable"}


def attach_foreign_table(db: Database, name: str, source: ForeignSource,
                         mode: str = "live",
                         latency_s: float = 0.0) -> ForeignTable:
    """Register a foreign table in *db*'s catalog under *name*."""
    table = ForeignTable(name, source, mode, latency_s)
    with db.rwlock.write_locked():
        db.catalog.register_table(table)  # duck-typed Table
        # DDL: queries can now observe new data.  Bumped inline (not
        # bump_generation()) so the WAL carries one "attach_foreign"
        # record, not a bump + descriptor pair.
        db._generation += 1
        journal = getattr(db, "durability_journal", None)
        if journal is not None:
            # Recorded as a descriptor, not a data mutation: recovery
            # re-attaches (CSV text inline, remote sources through the
            # caller-supplied resolver) instead of replaying fetches.
            journal.log("attach_foreign",
                        {"name": name, "mode": mode,
                         "latency_s": latency_s,
                         "source": describe_source(source)},
                        generation=db.generation)
    return table
