"""In-process RESTful integration layer (Fig. 1: "the integration
between the two platforms is managed by means of RESTful APIs").

:class:`RestRouter` is a tiny request router (method + ``/path/{param}``
patterns, query strings, JSON bodies in/out); :class:`CrosseRestService`
mounts the platform's operations on it so the Main Platform <->
Semantic Platform interaction runs through the same API surface the
deployed system uses, without sockets.

Two route generations are mounted:

* the historical ``/api/*`` routes (same paths and success payloads;
  error responses now use the structured envelope below, router-wide);
* the versioned ``/api/v1`` surface: cursor-token pagination on every
  list/query endpoint (``limit`` + opaque ``next_token``), query
  execution streamed through a capacity-bounded
  :class:`~repro.api.SessionPool`, a ``POST /api/v1/batch`` endpoint
  that runs independent requests concurrently through the pool, and a
  structured error envelope ``{"error": {"code", "message", "detail"}}``
  on every failure (including ``405`` with an ``allow`` list when the
  path exists but the method does not).
"""

from __future__ import annotations

import json
import re
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable
from urllib.parse import parse_qs

from ..analysis import AnalysisReport
from ..api.cursor import (CursorTokenError, paginate_cursor,
                          paginate_sequence, request_signature,
                          token_offset)
from ..api.errors import PoolTimeoutError
from ..api.pool import SessionPool
from ..core.errors import SesqlError
from ..relational.errors import RelationalError
from ..crosse.platform import CrossePlatform
from ..rdf.namespace import SMG
from .errors import RestError

Handler = Callable[[dict, dict], Any]  # (params, body) -> payload

#: Pagination guard rails for the v1 list/query endpoints.
DEFAULT_PAGE_LIMIT = 100
MAX_PAGE_LIMIT = 1000


def error_payload(code: str, message: str, detail: Any = None) -> dict:
    """The structured error envelope of the v1 surface."""
    return {"error": {"code": code, "message": message, "detail": detail}}


@dataclass
class Response:
    status: int
    payload: Any

    def json(self) -> str:
        return json.dumps(self.payload, default=str)


class RestRouter:
    """Method + path-template dispatch (with query-string support)."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, str, re.Pattern, Handler]] = []

    def register(self, method: str, template: str,
                 handler: Handler) -> None:
        pattern = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", template) + "$")
        self._routes.append((method.upper(), template, pattern, handler))

    def routes(self) -> list[tuple[str, str]]:
        """The route table: (method, template) pairs as registered."""
        return [(method, template)
                for method, template, _pattern, _handler in self._routes]

    def handle(self, method: str, path: str,
               body: dict | None = None) -> Response:
        path, _, query_string = path.partition("?")
        query = {key: values[-1]
                 for key, values in parse_qs(query_string).items()}
        allowed: set[str] = set()
        for route_method, _template, pattern, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            if route_method != method.upper():
                # The path exists; remember which methods it supports.
                allowed.add(route_method)
                continue
            params = {**query, **match.groupdict()}
            try:
                payload = handler(params, body or {})
            except RestError as exc:
                return Response(exc.status, error_payload(
                    exc.code, str(exc), exc.detail))
            except CursorTokenError as exc:
                return Response(400, error_payload(
                    "invalid_cursor", str(exc)))
            except PoolTimeoutError as exc:
                return Response(503, error_payload(
                    "pool_exhausted", str(exc)))
            except KeyError as exc:
                return Response(400, error_payload(
                    "missing_field", f"missing field {exc}"))
            except Exception as exc:
                return Response(422, error_payload(
                    "unprocessable", str(exc)))
            return Response(200, payload)
        if allowed:
            allow = sorted(allowed)
            payload = error_payload(
                "method_not_allowed",
                f"{method.upper()} not allowed for {path}",
                {"allow": allow})
            payload["allow"] = allow
            return Response(405, payload)
        return Response(404, error_payload(
            "not_found", f"no route for {method.upper()} {path}"))


def _page_args(params: dict, body: dict) -> tuple[int, str | None]:
    """Validated ``limit`` / ``next_token`` from query string or body."""
    raw_limit = params.get("limit", body.get("limit", DEFAULT_PAGE_LIMIT))
    try:
        limit = int(raw_limit)
    except (TypeError, ValueError):
        raise RestError(f"limit must be an integer, got {raw_limit!r}",
                        code="invalid_limit") from None
    if limit < 1 or limit > MAX_PAGE_LIMIT:
        raise RestError(
            f"limit must be between 1 and {MAX_PAGE_LIMIT}, got {limit}",
            code="invalid_limit")
    token = params.get("next_token") or body.get("next_token") or None
    return limit, token


class CrosseRestService:
    """The platform's REST facade used by the integration layer."""

    def __init__(self, platform: CrossePlatform,
                 pool_capacity: int = 8) -> None:
        self.platform = platform
        #: Query execution checks per-user sessions out of this pool.
        self.pool = SessionPool(platform, capacity=pool_capacity)
        self.router = RestRouter()
        self._mount()

    # -- transport entry point -------------------------------------------------

    def request(self, method: str, path: str,
                body: dict | None = None) -> Response:
        return self.router.handle(method, path, body)

    def close(self) -> None:
        self.pool.close()

    # -- routes -----------------------------------------------------------------

    def _mount(self) -> None:
        register = self.router.register
        # Historical (unversioned) surface — paths/payloads unchanged.
        register("POST", "/api/users", self._create_user)
        register("GET", "/api/users", self._list_users)
        register("POST", "/api/annotations", self._create_annotation)
        register("GET", "/api/annotations/{username}",
                 self._list_annotations)
        register("POST", "/api/statements/{statement_id}/accept",
                 self._accept_statement)
        register("POST", "/api/sesql", self._run_sesql)
        register("GET", "/api/recommendations/peers/{username}",
                 self._peer_recommendations)
        register("GET", "/api/recommendations/resources/{username}",
                 self._resource_recommendations)
        # Versioned v1 surface: paginated lists, pooled streaming
        # queries, batch.
        register("POST", "/api/v1/users", self._create_user)
        register("GET", "/api/v1/users", self._list_users_v1)
        register("POST", "/api/v1/annotations", self._create_annotation)
        register("GET", "/api/v1/annotations/{username}",
                 self._list_annotations_v1)
        register("POST", "/api/v1/statements/{statement_id}/accept",
                 self._accept_statement)
        register("POST", "/api/v1/query", self._query_v1)
        register("POST", "/api/v1/analyze", self._analyze_v1)
        register("GET", "/api/v1/recommendations/peers/{username}",
                 self._peer_recommendations_v1)
        register("GET", "/api/v1/recommendations/resources/{username}",
                 self._resource_recommendations_v1)
        register("POST", "/api/v1/batch", self._batch_v1)
        register("GET", "/api/v1/routes", self._list_routes)
        # Observability surface (404 with code=telemetry_disabled when
        # the platform was built without telemetry).
        register("GET", "/api/v1/metrics", self._metrics_v1)
        register("GET", "/api/v1/traces/{query_id}", self._trace_v1)
        register("GET", "/api/v1/slow_queries", self._slow_queries_v1)

    # -- shared handlers ---------------------------------------------------------

    def _create_user(self, _params: dict, body: dict) -> dict:
        user = self.platform.register_user(
            body["username"],
            body.get("display_name", ""),
            body.get("affiliation", ""),
            body.get("interests"))
        return {"username": user.username,
                "display_name": user.display_name}

    def _list_users(self, _params: dict, _body: dict) -> dict:
        return {"users": self.platform.users.usernames()}

    def _create_annotation(self, _params: dict, body: dict) -> dict:
        username = body["username"]
        prop = SMG[body["property"]]
        if body.get("scenario", "independent") == "integrated":
            record = self.platform.annotate_concept(
                username, body["table"], body["column"], body["value"],
                prop, body["object"])
        else:
            subject = SMG[body["subject"]]
            record = self.platform.annotate_free(
                username, subject, prop, body["object"])
        return {"statement_id": record.statement_id,
                "author": record.author}

    def _annotation_dicts(self, username: str) -> list[dict]:
        records = self.platform.explore_annotations(username)
        return [
            {"statement_id": record.statement_id,
             "author": record.author,
             "subject": str(record.triple.subject),
             "property": str(record.triple.predicate),
             "object": str(record.triple.object),
             "accepted_by": sorted(record.accepted_by)}
            for record in records]

    def _list_annotations(self, params: dict, _body: dict) -> dict:
        return {"annotations": self._annotation_dicts(params["username"])}

    def _accept_statement(self, params: dict, body: dict) -> dict:
        record = self.platform.accept_statement(
            body["username"], int(params["statement_id"]))
        return {"statement_id": record.statement_id,
                "accepted_by": sorted(record.accepted_by)}

    def _run_sesql(self, _params: dict, body: dict) -> dict:
        outcome = self.platform.run_sesql(body["username"], body["query"])
        return {
            "columns": outcome.columns,
            "rows": [list(row) for row in outcome.rows],
            "sparql_queries": outcome.sparql_queries,
            "final_sqls": outcome.final_sqls,
        }

    def _peer_recommendations(self, params: dict, _body: dict) -> dict:
        peers = self.platform.recommend_peers(params["username"])
        return {"peers": [{"username": username, "similarity": score}
                          for username, score in peers]}

    def _resource_recommendations(self, params: dict, _body: dict) -> dict:
        resources = self.platform.recommend_resources(params["username"])
        return {"resources": [{"resource": name, "score": score}
                              for name, score in resources]}

    # -- v1: paginated listings ---------------------------------------------------

    def _paginated(self, items: list, key: str, params: dict,
                   body: dict, *signature_parts: Any) -> dict:
        limit, token = _page_args(params, body)
        signature = request_signature(key, *signature_parts)
        page = paginate_sequence(items, limit, token, signature)
        return {key: page.items, "next_token": page.next_token,
                "limit": limit}

    def _list_users_v1(self, params: dict, body: dict) -> dict:
        return self._paginated(self.platform.users.usernames(),
                               "users", params, body)

    def _list_annotations_v1(self, params: dict, body: dict) -> dict:
        username = params["username"]
        return self._paginated(self._annotation_dicts(username),
                               "annotations", params, body, username)

    def _peer_recommendations_v1(self, params: dict, body: dict) -> dict:
        # count=None: the full ranking — pagination, not the
        # recommender, bounds what one response carries.
        username = params["username"]
        peers = [{"username": name, "similarity": score}
                 for name, score in self.platform.recommend_peers(
                     username, count=None)]
        return self._paginated(peers, "peers", params, body, username)

    def _resource_recommendations_v1(self, params: dict,
                                     body: dict) -> dict:
        username = params["username"]
        resources = [{"resource": name, "score": score}
                     for name, score in self.platform.recommend_resources(
                         username, count=None)]
        return self._paginated(resources, "resources", params, body,
                               username)

    def _list_routes(self, _params: dict, _body: dict) -> dict:
        return {"routes": [{"method": method, "path": template}
                           for method, template in self.router.routes()]}

    # -- v1: observability ----------------------------------------------------------

    def _telemetry(self):
        telemetry = getattr(self.platform, "telemetry", None)
        if telemetry is None:
            raise RestError(
                "telemetry is not enabled on this platform",
                status=404, code="telemetry_disabled",
                detail="construct CrossePlatform(..., telemetry=...) or "
                       "call platform.enable_telemetry()")
        return telemetry

    def _metrics_v1(self, params: dict, _body: dict) -> Any:
        telemetry = self._telemetry()
        fmt = params.get("format", "json")
        if fmt == "prometheus":
            # Text exposition format 0.0.4; the payload is the raw text
            # (a socket transport would serve it as text/plain).
            return telemetry.metrics.render_prometheus()
        if fmt != "json":
            raise RestError(
                f"unknown metrics format {fmt!r}; use json or prometheus",
                code="invalid_format")
        return {"metrics": telemetry.metrics.to_dict()}

    def _trace_v1(self, params: dict, _body: dict) -> dict:
        telemetry = self._telemetry()
        root = telemetry.tracer.trace(params["query_id"])
        if root is None:
            raise RestError(
                f"no trace retained for {params['query_id']!r}",
                status=404, code="trace_not_found")
        return {"trace": root.to_dict()}

    def _slow_queries_v1(self, params: dict, body: dict) -> dict:
        telemetry = self._telemetry()
        log = telemetry.slow_queries
        payload = self._paginated(
            [entry.to_dict() for entry in log.entries()],
            "slow_queries", params, body)
        payload["threshold_s"] = log.threshold_s
        payload["recorded"] = log.recorded
        return payload

    # -- v1: pooled streaming query ------------------------------------------------

    def _query_v1(self, params: dict, body: dict) -> dict:
        username = body["username"]
        text = body["query"]
        query_params = body.get("params")
        limit, token = _page_args(params, body)
        signature = request_signature("query", username, text,
                                      query_params)
        # Reject a bad token before checking out a session and running
        # the pipeline: a forged continuation must cost nothing.
        token_offset(token, signature)
        with self.pool.checkout(username) as session:
            cursor = session.stream(text, query_params)
            columns = list(cursor.columns)
            page = paginate_cursor(cursor, limit, token, signature)
            trace = session.last_trace()
        payload = {
            "columns": columns,
            "rows": [list(row) for row in page.items],
            "next_token": page.next_token,
            "limit": limit,
        }
        if trace is not None:
            # Join handle to GET /api/v1/traces/{query_id}.
            payload["query_id"] = trace.query_id
        return payload

    def _analyze_v1(self, _params: dict, body: dict) -> dict:
        """Static analysis of a SESQL statement, without executing it.

        Always answers 200 with a report: an unparsable statement
        yields one ``E-SYNTAX`` diagnostic rather than a transport
        error, so linting clients can treat every outcome uniformly.
        """
        username = body["username"]
        text = body["query"]
        with self.pool.checkout(username) as session:
            try:
                prepared = session.prepare(text)
            except (SesqlError, RelationalError) as exc:
                report = AnalysisReport(statement=text)
                report.add("E-SYNTAX", str(exc))
                return {"report": report.to_dict()}
            report = prepared.diagnostics
        if report is None:  # analysis disabled on this session
            report = AnalysisReport(statement=text)
        return {"report": report.to_dict()}

    # -- v1: batch ------------------------------------------------------------------

    def _batch_v1(self, _params: dict, body: dict) -> dict:
        requests = body["requests"]
        if not isinstance(requests, list):
            raise RestError("requests must be a list",
                            code="invalid_batch")
        for entry in requests:
            if not isinstance(entry, dict) or "path" not in entry:
                raise RestError(
                    "each batch entry needs at least a path",
                    code="invalid_batch", detail=entry)
            if entry["path"].partition("?")[0] == "/api/v1/batch":
                raise RestError("batch requests cannot nest",
                                code="invalid_batch")
        if not requests:
            return {"responses": []}

        def dispatch(entry: dict) -> Response:
            return self.request(entry.get("method", "GET"),
                                entry["path"], entry.get("body"))

        def is_read_only(entry: dict) -> bool:
            method = entry.get("method", "GET").upper()
            path = entry["path"].partition("?")[0]
            return method == "GET" or path in ("/api/v1/query",
                                               "/api/sesql")

        # Wave execution: consecutive read/query sub-requests run
        # concurrently (contending on the session pool and the
        # databank's reader-writer lock like independent top-level
        # requests); a platform-mutating one (users, annotations,
        # acceptance) is an in-order barrier — platform registries are
        # not synchronized for concurrent writers, and a query after a
        # mutation in the same batch must observe it.
        responses: list[Response] = []
        index = 0
        while index < len(requests):
            if not is_read_only(requests[index]):
                responses.append(dispatch(requests[index]))
                index += 1
                continue
            wave = [requests[index]]
            while index + len(wave) < len(requests) \
                    and is_read_only(requests[index + len(wave)]):
                wave.append(requests[index + len(wave)])
            workers = min(len(wave), self.pool.capacity)
            with ThreadPoolExecutor(max_workers=workers) as executor:
                responses.extend(executor.map(dispatch, wave))
            index += len(wave)
        return {"responses": [
            {"status": response.status, "body": response.payload}
            for response in responses]}
