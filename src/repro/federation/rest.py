"""In-process RESTful integration layer (Fig. 1: "the integration
between the two platforms is managed by means of RESTful APIs").

:class:`RestRouter` is a tiny request router (method + ``/path/{param}``
patterns, JSON bodies in/out); :class:`CrosseRestService` mounts the
platform's operations on it so the Main Platform <-> Semantic Platform
interaction runs through the same API surface the deployed system uses,
without sockets.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Callable

from ..crosse.platform import CrossePlatform
from ..rdf.namespace import SMG
from .errors import RestError

Handler = Callable[[dict, dict], Any]  # (path_params, body) -> payload


@dataclass
class Response:
    status: int
    payload: Any

    def json(self) -> str:
        return json.dumps(self.payload, default=str)


class RestRouter:
    """Method + path-template dispatch."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, re.Pattern, Handler]] = []

    def register(self, method: str, template: str,
                 handler: Handler) -> None:
        pattern = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", template) + "$")
        self._routes.append((method.upper(), pattern, handler))

    def handle(self, method: str, path: str,
               body: dict | None = None) -> Response:
        for route_method, pattern, handler in self._routes:
            if route_method != method.upper():
                continue
            match = pattern.match(path)
            if match is None:
                continue
            try:
                payload = handler(match.groupdict(), body or {})
            except RestError:
                raise
            except KeyError as exc:
                return Response(400, {"error": f"missing field {exc}"})
            except Exception as exc:
                return Response(422, {"error": str(exc)})
            return Response(200, payload)
        return Response(404, {"error": f"no route for "
                                       f"{method.upper()} {path}"})


class CrosseRestService:
    """The platform's REST facade used by the integration layer."""

    def __init__(self, platform: CrossePlatform) -> None:
        self.platform = platform
        self.router = RestRouter()
        self._mount()

    # -- transport entry point -------------------------------------------------

    def request(self, method: str, path: str,
                body: dict | None = None) -> Response:
        return self.router.handle(method, path, body)

    # -- routes -----------------------------------------------------------------

    def _mount(self) -> None:
        register = self.router.register
        register("POST", "/api/users", self._create_user)
        register("GET", "/api/users", self._list_users)
        register("POST", "/api/annotations", self._create_annotation)
        register("GET", "/api/annotations/{username}",
                 self._list_annotations)
        register("POST", "/api/statements/{statement_id}/accept",
                 self._accept_statement)
        register("POST", "/api/sesql", self._run_sesql)
        register("GET", "/api/recommendations/peers/{username}",
                 self._peer_recommendations)
        register("GET", "/api/recommendations/resources/{username}",
                 self._resource_recommendations)

    def _create_user(self, _params: dict, body: dict) -> dict:
        user = self.platform.register_user(
            body["username"],
            body.get("display_name", ""),
            body.get("affiliation", ""),
            body.get("interests"))
        return {"username": user.username,
                "display_name": user.display_name}

    def _list_users(self, _params: dict, _body: dict) -> dict:
        return {"users": self.platform.users.usernames()}

    def _create_annotation(self, _params: dict, body: dict) -> dict:
        username = body["username"]
        prop = SMG[body["property"]]
        if body.get("scenario", "independent") == "integrated":
            record = self.platform.annotate_concept(
                username, body["table"], body["column"], body["value"],
                prop, body["object"])
        else:
            subject = SMG[body["subject"]]
            record = self.platform.annotate_free(
                username, subject, prop, body["object"])
        return {"statement_id": record.statement_id,
                "author": record.author}

    def _list_annotations(self, params: dict, _body: dict) -> dict:
        records = self.platform.explore_annotations(params["username"])
        return {"annotations": [
            {"statement_id": record.statement_id,
             "author": record.author,
             "subject": str(record.triple.subject),
             "property": str(record.triple.predicate),
             "object": str(record.triple.object),
             "accepted_by": sorted(record.accepted_by)}
            for record in records]}

    def _accept_statement(self, params: dict, body: dict) -> dict:
        record = self.platform.accept_statement(
            body["username"], int(params["statement_id"]))
        return {"statement_id": record.statement_id,
                "accepted_by": sorted(record.accepted_by)}

    def _run_sesql(self, _params: dict, body: dict) -> dict:
        outcome = self.platform.run_sesql(body["username"], body["query"])
        return {
            "columns": outcome.columns,
            "rows": [list(row) for row in outcome.rows],
            "sparql_queries": outcome.sparql_queries,
            "final_sqls": outcome.final_sqls,
        }

    def _peer_recommendations(self, params: dict, _body: dict) -> dict:
        peers = self.platform.recommend_peers(params["username"])
        return {"peers": [{"username": username, "similarity": score}
                          for username, score in peers]}

    def _resource_recommendations(self, params: dict, _body: dict) -> dict:
        resources = self.platform.recommend_resources(params["username"])
        return {"resources": [{"resource": name, "score": score}
                              for name, score in resources]}
