"""Exception hierarchy for the federation layer."""

from __future__ import annotations


class FederationError(Exception):
    """Base class for federation errors."""


class ForeignTableError(FederationError):
    """Misuse of read-only foreign tables."""


class MediationError(FederationError):
    """Bad view definitions or reconciliation failures."""


class RestError(FederationError):
    """Routing/handler failures in the REST integration layer.

    Carries the HTTP-shaped metadata the router maps into a structured
    error envelope (``{"error": {"code", "message", "detail"}}``)
    instead of letting the exception escape the transport boundary.
    """

    def __init__(self, message: str, status: int = 400,
                 code: str = "bad_request", detail=None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.detail = detail
