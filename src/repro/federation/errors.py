"""Exception hierarchy for the federation layer."""

from __future__ import annotations


class FederationError(Exception):
    """Base class for federation errors."""


class ForeignTableError(FederationError):
    """Misuse of read-only foreign tables."""


class MediationError(FederationError):
    """Bad view definitions or reconciliation failures."""


class RestError(FederationError):
    """Routing/handler failures in the REST integration layer."""
