"""A GAV (global-as-view) mediated query system (Section II).

The SmartGround platform "integrates existing information from national
and international databanks".  The mediator provides the single
read-only query point of such a system:

* sources register as named databases (wrappers);
* each *global view* is defined in terms of the sources (GAV): a list
  of (source, SELECT) pairs whose union populates the view;
* a mediated query decomposes into per-source sub-queries, ships them,
  reconciles the partial results (``union_all`` / ``union`` dedupe /
  ``prefer_first`` per-key precedence), materialises the views into a
  scratch database and runs the user query there.

``MediationReport`` exposes the decomposition so tests and benchmarks
can check who was asked for what.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..relational import ast as sql_ast
from ..relational.engine import Database
from ..relational.indexes import _normalize
from ..relational.parser import parse_sql
from ..relational.result import ResultSet
from .errors import MediationError

RECONCILIATIONS = ("union_all", "union", "prefer_first")


@dataclass
class ViewFragment:
    """One GAV mapping entry: a source query feeding a global view."""

    source: str
    sql: str


@dataclass
class GlobalView:
    name: str
    fragments: list[ViewFragment]
    reconciliation: str = "union_all"
    key_columns: list[str] = field(default_factory=list)


@dataclass
class MediationReport:
    """What one mediated query did."""

    sub_queries: list[tuple[str, str]] = field(default_factory=list)
    rows_per_source: dict[str, int] = field(default_factory=dict)
    view_rows: dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0


class Mediator:
    """The global query processor over registered sources."""

    def __init__(self) -> None:
        self._sources: dict[str, Database] = {}
        self._views: dict[str, GlobalView] = {}

    # -- registration ----------------------------------------------------------

    def register_source(self, name: str, database: Database) -> None:
        if name in self._sources:
            raise MediationError(f"source {name!r} already registered")
        self._sources[name] = database

    def source(self, name: str) -> Database:
        try:
            return self._sources[name]
        except KeyError:
            raise MediationError(f"unknown source {name!r}") from None

    def source_names(self) -> list[str]:
        return sorted(self._sources)

    def define_view(self, name: str,
                    fragments: list[tuple[str, str]],
                    reconciliation: str = "union_all",
                    key_columns: list[str] | None = None) -> GlobalView:
        """Define a global relation as the union of source queries (GAV)."""
        if reconciliation not in RECONCILIATIONS:
            raise MediationError(
                f"unknown reconciliation {reconciliation!r}")
        if reconciliation == "prefer_first" and not key_columns:
            raise MediationError(
                "prefer_first reconciliation requires key_columns")
        if not fragments:
            raise MediationError(f"view {name!r} needs at least one "
                                 "fragment")
        for source_name, _sql in fragments:
            self.source(source_name)
        view = GlobalView(
            name,
            [ViewFragment(source_name, sql)
             for source_name, sql in fragments],
            reconciliation,
            list(key_columns or []))
        self._views[name] = view
        return view

    def view_names(self) -> list[str]:
        return sorted(self._views)

    def referenced_views(self, sql: str) -> list[str]:
        """Views whose names occur as table references in *sql*.

        This is the mediator's pruning step: only views the query can
        actually touch are decomposed and shipped to the sources.  On a
        parse failure every view is returned (the scratch database will
        report the real syntax error when it runs the query).
        """
        try:
            statement = parse_sql(sql)
        except Exception:
            return self.view_names()
        if not isinstance(statement, sql_ast.SelectQuery):
            return self.view_names()
        referenced = sql_ast.referenced_tables(statement)
        return [name for name in self.view_names()
                if name.lower() in referenced]

    # -- mediated querying ----------------------------------------------------------

    def query(self, sql: str,
              views: list[str] | None = None
              ) -> tuple[ResultSet, MediationReport]:
        """Run *sql* against the global schema.

        *views* limits which global views are materialised; by default
        the query is parsed and only the views it references are shipped
        (``referenced_views``) — the report shows what was shipped.

        Each call uses a throwaway session, so every referenced view is
        re-shipped (always-fresh snapshot semantics); use ``connect()``
        for a session that reuses materializations across queries.
        """
        return MediatorSession(self).execute(sql, views)

    # -- sessions -------------------------------------------------------------------

    def connect(self) -> "MediatorSession":
        """A session over the global schema with materialization reuse."""
        return MediatorSession(self)

    # -- internals ----------------------------------------------------------------------

    def _materialize_view(self, view: GlobalView,
                          report: MediationReport
                          ) -> tuple[list[tuple], list[str]]:
        partials: list[tuple[str, ResultSet]] = []
        columns: list[str] | None = None
        for fragment in view.fragments:
            database = self.source(fragment.source)
            report.sub_queries.append((fragment.source, fragment.sql))
            partial = database.query(fragment.sql)
            report.rows_per_source[fragment.source] = \
                report.rows_per_source.get(fragment.source, 0) \
                + len(partial)
            if columns is None:
                columns = list(partial.columns)
            elif len(partial.columns) != len(columns):
                raise MediationError(
                    f"view {view.name!r}: fragment from "
                    f"{fragment.source!r} returns {len(partial.columns)} "
                    f"columns, expected {len(columns)}")
            partials.append((fragment.source, partial))
        rows = self._reconcile(view, partials)
        return rows, columns or []

    @staticmethod
    def _reconcile(view: GlobalView,
                   partials: list[tuple[str, ResultSet]]) -> list[tuple]:
        if view.reconciliation == "union_all":
            merged: list[tuple] = []
            for _source, partial in partials:
                merged.extend(partial.rows)
            return merged
        if view.reconciliation == "union":
            seen: set[tuple] = set()
            merged = []
            for _source, partial in partials:
                for row in partial.rows:
                    key = tuple(_normalize(v) if v is not None else None
                                for v in row)
                    if key not in seen:
                        seen.add(key)
                        merged.append(row)
            return merged
        # prefer_first: earlier fragments win on key collision — the
        # "reconciliation of the results" step of mediated systems.
        key_positions: list[int] | None = None
        seen_keys: set[tuple] = set()
        merged = []
        for _source, partial in partials:
            if key_positions is None:
                key_positions = [partial.column_index(column)
                                 for column in view.key_columns]
            for row in partial.rows:
                key = tuple(row[i] for i in key_positions)
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                merged.append(row)
        return merged

    @staticmethod
    def _store(scratch: Database, name: str, columns: list[str],
               rows: list[tuple]) -> None:
        from ..core.tempdb import infer_column_type
        from ..relational.schema import Column

        table_columns = []
        for index, column_name in enumerate(columns):
            values = (row[index] for row in rows)
            table_columns.append(
                Column(column_name, infer_column_type(values)))
        table = scratch.create_table(name, table_columns)
        for row in rows:
            table.insert_tuple(row)


class MediatorSession:
    """A stateful query session over a mediator's global schema.

    Where :meth:`Mediator.query` rebuilds its scratch database per call
    (always-fresh snapshot semantics), a session keeps one scratch
    database alive and reuses already-materialized views across queries:
    the first query touching view V ships V's sub-queries, later ones
    hit the local copy.  ``refresh()`` drops materializations to pick up
    source-side changes (or redefined views).
    """

    def __init__(self, mediator: Mediator) -> None:
        self.mediator = mediator
        self._scratch = Database("mediator-session")
        self._view_rows: dict[str, int] = {}
        self.hits = 0      # views served from the local materialization
        self.misses = 0    # views shipped to the sources

    def execute(self, sql: str, views: list[str] | None = None
                ) -> tuple[ResultSet, MediationReport]:
        """Run *sql* on the global schema, materializing views lazily."""
        report = MediationReport()
        started = time.perf_counter()
        wanted = views if views is not None \
            else self.mediator.referenced_views(sql)
        for view_name in wanted:
            view = self.mediator._views.get(view_name)
            if view is None:
                raise MediationError(f"unknown view {view_name!r}")
            if view_name in self._view_rows:
                self.hits += 1
            else:
                rows, columns = self.mediator._materialize_view(view,
                                                                report)
                Mediator._store(self._scratch, view.name, columns, rows)
                self._view_rows[view.name] = len(rows)
                self.misses += 1
            report.view_rows[view.name] = self._view_rows[view.name]
        result = self._scratch.query(sql)
        report.elapsed_s = time.perf_counter() - started
        return result, report

    def query(self, sql: str) -> ResultSet:
        """Execute and return just the rows."""
        return self.execute(sql)[0]

    def refresh(self, views: list[str] | None = None) -> None:
        """Drop cached materializations (all views when none given)."""
        doomed = list(self._view_rows) if views is None else views
        for view_name in doomed:
            if self._view_rows.pop(view_name, None) is not None:
                self._scratch.catalog.drop_table(view_name,
                                                 if_exists=True)

    def explain(self, sql: str) -> "QueryPlan":
        """The mediation plan — pruned views, per-source sub-queries and
        materialization cache state — without shipping anything."""
        from ..api.plan import PlanStage, QueryPlan

        wanted = self.mediator.referenced_views(sql)
        stages = [PlanStage(
            "prune", f"query references {len(wanted)} of "
            f"{len(self.mediator.view_names())} global view(s)",
            [", ".join(wanted) or "(none)"])]
        hits = misses = 0
        for view_name in wanted:
            view = self.mediator._views[view_name]
            cached = view_name in self._view_rows
            hits += cached
            misses += not cached
            stages.append(PlanStage(
                "materialize",
                f"view {view_name!r}: {view.reconciliation} over "
                f"{len(view.fragments)} fragment(s)",
                [f"{fragment.source}: {fragment.sql}"
                 for fragment in view.fragments],
                cached=cached))
        stages.append(PlanStage(
            "sql", "scratch database executes the global query", [sql]))
        return QueryPlan(
            statement=sql, base_sql=sql, rewritten_sql=sql,
            join_strategy="mediation", stages=stages,
            cache_hits=hits, cache_misses=misses)

    def close(self) -> None:
        self.refresh()
