"""A GAV (global-as-view) mediated query system (Section II).

The SmartGround platform "integrates existing information from national
and international databanks".  The mediator provides the single
read-only query point of such a system:

* sources register as named databases (wrappers);
* each *global view* is defined in terms of the sources (GAV): a list
  of (source, SELECT) pairs whose union populates the view;
* a mediated query decomposes into per-source sub-queries, ships them
  **concurrently** through the :mod:`~repro.federation.executor` worker
  pool (the sources are independent, so a query touching *k* of them
  pays one round-trip, not *k*), reconciles the partial results
  (``union_all`` / ``union`` dedupe / ``prefer_first`` per-key
  precedence) behind a per-view barrier in the deterministic
  fragment-definition order, materialises the views into a scratch
  database and runs the user query there.

:class:`~repro.federation.FederationOptions` configures the pool width,
per-source failure policies (``fail`` / ``skip`` / ``retry``) and the
generation-keyed fragment-result cache.  ``MediationReport`` exposes the
decomposition — including per-source timings, retries and skips — so
tests and benchmarks can check who was asked for what and what it cost.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..planner.joins import estimate_query_rows
from ..planner.rewrite import (binding_of, from_leaves, map_expr,
                               null_safe_bindings, query_output_columns,
                               referenced_bindings)
from ..relational import ast as sql_ast
from ..relational.engine import Database
from ..relational.errors import ExecutionError
from ..relational.indexes import _normalize
from ..relational.parser import parse_sql
from ..relational.render import quote_identifier, render_expr
from ..relational.result import ResultSet
from ..relational.table import Table
from .errors import MediationError
from .executor import (FederationExecutor, FederationOptions, FragmentCache,
                       FragmentJob, FragmentResult)

RECONCILIATIONS = ("union_all", "union", "prefer_first")

#: Shared no-op context for disabled-telemetry span sites.
_NOOP = nullcontext()

#: Abstract cost units charged per second of simulated source latency
#: when ranking views/sources (one remote hop ≈ many local row visits).
LATENCY_COST = 50_000.0


@dataclass
class ViewFragment:
    """One GAV mapping entry: a source query feeding a global view."""

    source: str
    sql: str


@dataclass
class GlobalView:
    name: str
    fragments: list[ViewFragment]
    reconciliation: str = "union_all"
    key_columns: list[str] = field(default_factory=list)


@dataclass
class MediationReport:
    """What one mediated query did."""

    sub_queries: list[tuple[str, str]] = field(default_factory=list)
    rows_per_source: dict[str, int] = field(default_factory=dict)
    view_rows: dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0
    #: Estimated materialization cost per view (0.0 = already local);
    #: views are shipped cheapest-first in this ranking.
    view_costs: dict[str, float] = field(default_factory=dict)
    #: Filters pushed into the per-source sub-queries, per view.
    pushed_filters: dict[str, str] = field(default_factory=dict)
    #: Cumulative wall-clock spent shipping each source's fragments
    #: (cache hits contribute their — negligible — lookup time).
    source_timings: dict[str, float] = field(default_factory=dict)
    #: Extra attempts per source under the ``retry`` policy.
    retry_counts: dict[str, int] = field(default_factory=dict)
    #: Sources with at least one fragment dropped under the ``skip``
    #: policy (each source listed once, in drop order).
    skipped_sources: list[str] = field(default_factory=list)
    #: Last error text per failing source (skip policy).
    source_errors: dict[str, str] = field(default_factory=dict)
    #: Fragments served from the generation-keyed result cache.
    fragment_cache_hits: int = 0
    #: Warn-level notes (e.g. fragment column renames).
    warnings: list[str] = field(default_factory=list)


class Mediator:
    """The global query processor over registered sources."""

    def __init__(self, options: FederationOptions | None = None) -> None:
        self._sources: dict[str, Database] = {}
        self._views: dict[str, GlobalView] = {}
        #: Parallel-shipping configuration, shared by all sessions.
        self.options = options or FederationOptions()
        #: Fragment-result cache, shared across sessions (entries are
        #: keyed on the source's generation stamp, so sharing is safe).
        self.fragment_cache = FragmentCache(self.options.fragment_cache_size)
        self.executor = FederationExecutor(self.options,
                                           self.fragment_cache)
        #: Memo of each base fragment SQL's referenced tables (None =
        #: unparseable), so cacheability checks don't re-parse per
        #: query; bounded by the fragments ever defined.
        self._fragment_refs: dict[tuple[str, str], list[str] | None] = {}

    # -- registration ----------------------------------------------------------

    def register_source(self, name: str, database: Database) -> None:
        if name in self._sources:
            raise MediationError(f"source {name!r} already registered")
        self._sources[name] = database

    def source(self, name: str) -> Database:
        try:
            return self._sources[name]
        except KeyError:
            raise MediationError(f"unknown source {name!r}") from None

    def source_names(self) -> list[str]:
        return sorted(self._sources)

    def define_view(self, name: str,
                    fragments: list[tuple[str, str]],
                    reconciliation: str = "union_all",
                    key_columns: list[str] | None = None) -> GlobalView:
        """Define a global relation as the union of source queries (GAV)."""
        if reconciliation not in RECONCILIATIONS:
            raise MediationError(
                f"unknown reconciliation {reconciliation!r}")
        if reconciliation == "prefer_first" and not key_columns:
            raise MediationError(
                "prefer_first reconciliation requires key_columns")
        if not fragments:
            raise MediationError(f"view {name!r} needs at least one "
                                 "fragment")
        for source_name, _sql in fragments:
            self.source(source_name)
        view = GlobalView(
            name,
            [ViewFragment(source_name, sql)
             for source_name, sql in fragments],
            reconciliation,
            list(key_columns or []))
        self._views[name] = view
        return view

    def view_names(self) -> list[str]:
        return sorted(self._views)

    def referenced_views(self, sql: str) -> list[str]:
        """Views whose names occur as table references in *sql*.

        This is the mediator's pruning step: only views the query can
        actually touch are decomposed and shipped to the sources.  On a
        parse failure every view is returned (the scratch database will
        report the real syntax error when it runs the query).
        """
        statement = self._try_parse(sql)
        if statement is None:
            return self.view_names()
        return self.referenced_views_in(statement)

    def referenced_views_in(self,
                            statement: sql_ast.SelectQuery) -> list[str]:
        """Pruning over an already-parsed statement (no re-parse)."""
        referenced = sql_ast.referenced_tables(statement)
        return [name for name in self.view_names()
                if name.lower() in referenced]

    @staticmethod
    def _try_parse(sql: str) -> sql_ast.SelectQuery | None:
        try:
            statement = parse_sql(sql)
        except Exception:
            return None
        if not isinstance(statement, sql_ast.SelectQuery):
            return None
        return statement

    # -- cost ranking -------------------------------------------------------

    def estimate_view_cost(self, view: GlobalView) -> float:
        """Estimated cost of materializing *view*: per-fragment row
        estimates from each source's planner statistics, plus a heavy
        penalty per simulated remote hop (foreign-table latency)."""
        total = 0.0
        for fragment in view.fragments:
            total += self._fragment_cost(self.source(fragment.source),
                                         fragment.sql)
        return total

    @staticmethod
    def _fragment_cost(database: Database, sql: str) -> float:
        statement = Mediator._try_parse(sql)
        if statement is None:
            return 1000.0
        cost = estimate_query_rows(statement, database.catalog,
                                   database.stats)
        for name in sql_ast.referenced_tables(statement):
            if database.catalog.has_table(name):
                table = database.catalog.table(name)
                cost += getattr(table, "latency_s", 0.0) * LATENCY_COST
        return cost

    # -- mediated querying ----------------------------------------------------------

    def query(self, sql: str,
              views: list[str] | None = None,
              pushdown: bool = True
              ) -> tuple[ResultSet, MediationReport]:
        """Run *sql* against the global schema.

        *views* limits which global views are materialised; by default
        the query is parsed and only the views it references are shipped
        (``referenced_views``) — the report shows what was shipped.
        With *pushdown* (the default), single-view WHERE conjuncts are
        pushed into the per-source sub-queries so sources filter before
        shipping (the global query still re-applies them locally).

        Each call uses a throwaway session, so every referenced view is
        re-shipped (always-fresh snapshot semantics); use ``connect()``
        for a session that reuses materializations across queries.
        """
        return MediatorSession(self).execute(sql, views,
                                             pushdown=pushdown)

    # -- sessions -------------------------------------------------------------------

    def connect(self, options: FederationOptions | None = None
                ) -> "MediatorSession":
        """A session over the global schema with materialization reuse.

        *options* overrides the mediator-wide shipping configuration
        for this session only (the fragment cache stays shared — its
        entries are generation-keyed, so they are valid for everyone).
        """
        return MediatorSession(self, options)

    def as_databank(self, options: FederationOptions | None = None,
                    name: str = "mediated"):
        """This global schema as a :class:`~repro.federation.
        MediatedDatabank` — a Database whose tables are the mediated
        views, usable anywhere a databank is expected (notably as the
        SESQL engine's databank, for enriched federated queries)."""
        from .databank import MediatedDatabank
        return MediatedDatabank(self, options, name)

    # -- internals ----------------------------------------------------------------------

    def _fragment_jobs(self, view: GlobalView,
                       filter_sql: str | None = None) -> list[FragmentJob]:
        """The executor jobs materializing *view*, in fragment order."""
        jobs = []
        for index, fragment in enumerate(view.fragments):
            database = self.source(fragment.source)
            fragment_sql = fragment.sql
            # Cacheability is decided from the *base* fragment SQL: a
            # pushed-down filter only wraps it in an outer WHERE, so it
            # references the same tables and inherits the verdict.
            cacheable = self._fragment_cacheable(
                fragment.source, database, fragment.sql)
            if filter_sql is not None:
                fragment_sql = (
                    f"SELECT * FROM ({fragment.sql}) AS "
                    f"{quote_identifier(view.name)} WHERE {filter_sql}")
            jobs.append(FragmentJob(
                view.name, index, fragment.source, database, fragment_sql,
                cacheable=cacheable))
        return jobs

    def _fragment_cacheable(self, source_name: str, database: Database,
                            sql: str) -> bool:
        """Whether the generation stamp fully covers the fragment.

        Every referenced table must be a regular heap table of the
        source: a foreign table's remote content can change without
        moving the local stamp, so such fragments always re-execute.
        The parse is memoized per (source, SQL) — only the (cheap)
        catalog type checks rerun per query, since DDL can swap a heap
        table for a foreign one between ships.
        """
        key = (source_name, sql)
        try:
            referenced = self._fragment_refs[key]
        except KeyError:
            statement = Mediator._try_parse(sql)
            referenced = (None if statement is None
                          else sorted(sql_ast.referenced_tables(statement)))
            self._fragment_refs[key] = referenced
        if referenced is None:
            return False
        for name in referenced:
            if not database.catalog.has_table(name):
                return False
            if not isinstance(database.catalog.table(name), Table):
                return False
        return True

    def _assemble_view(self, view: GlobalView,
                       results: list[FragmentResult],
                       report: MediationReport
                       ) -> tuple[list[tuple], list[str]]:
        """Validate fragment columns and reconcile the partial results.

        Column *arity* must agree across fragments (the error names
        both column lists); column *names* are validated positionally —
        the first successful fragment wins, a rename elsewhere only
        earns a warn-level report entry.
        """
        partials: list[tuple[str, ResultSet]] = []
        columns: list[str] | None = None
        for outcome in results:
            if outcome.result is None:
                continue  # skipped source: contributes no rows
            partial = outcome.result
            if columns is None:
                columns = list(partial.columns)
            elif len(partial.columns) != len(columns):
                raise MediationError(
                    f"view {view.name!r}: fragment from "
                    f"{outcome.job.source!r} returns "
                    f"{len(partial.columns)} column(s) "
                    f"{list(partial.columns)!r}, expected {len(columns)} "
                    f"{columns!r}")
            elif [name.lower() for name in partial.columns] \
                    != [name.lower() for name in columns]:
                report.warnings.append(
                    f"view {view.name!r}: fragment from "
                    f"{outcome.job.source!r} names columns "
                    f"{list(partial.columns)!r}; keeping {columns!r} "
                    f"(first fragment wins)")
            partials.append((outcome.job.source, partial))
        if columns is None:
            raise MediationError(
                f"view {view.name!r}: every fragment was skipped, no "
                f"schema to materialize")
        rows = self._reconcile(view, partials)
        return rows, columns

    @staticmethod
    def _fold_results(report: MediationReport,
                      results: list[FragmentResult]) -> None:
        """Record shipping outcomes (timings, retries, skips, cache)."""
        for outcome in results:
            source = outcome.job.source
            report.source_timings[source] = \
                report.source_timings.get(source, 0.0) + outcome.elapsed_s
            if outcome.attempts > 1:
                report.retry_counts[source] = \
                    report.retry_counts.get(source, 0) \
                    + outcome.attempts - 1
            if outcome.cached:
                report.fragment_cache_hits += 1
            if outcome.result is None:
                if source not in report.skipped_sources:
                    report.skipped_sources.append(source)
                if outcome.error is not None:
                    report.source_errors[source] = outcome.error
            else:
                report.rows_per_source[source] = \
                    report.rows_per_source.get(source, 0) \
                    + len(outcome.result)

    @staticmethod
    def _reconcile(view: GlobalView,
                   partials: list[tuple[str, ResultSet]]) -> list[tuple]:
        if view.reconciliation == "union_all":
            merged: list[tuple] = []
            for _source, partial in partials:
                merged.extend(partial.rows)
            return merged
        if view.reconciliation == "union":
            seen: set[tuple] = set()
            merged = []
            for _source, partial in partials:
                for row in partial.rows:
                    key = tuple(_normalize(v) if v is not None else None
                                for v in row)
                    if key not in seen:
                        seen.add(key)
                        merged.append(row)
            return merged
        # prefer_first: earlier fragments win on key collision — the
        # "reconciliation of the results" step of mediated systems.
        key_positions: list[int] | None = None
        seen_keys: set[tuple] = set()
        merged = []
        for _source, partial in partials:
            if key_positions is None:
                key_positions = [partial.column_index(column)
                                 for column in view.key_columns]
            for row in partial.rows:
                key = tuple(row[i] for i in key_positions)
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                merged.append(row)
        return merged

    @staticmethod
    def _store(scratch: Database, name: str, columns: list[str],
               rows: list[tuple]) -> None:
        from ..core.tempdb import infer_column_type
        from ..relational.schema import Column

        table_columns = []
        for index, column_name in enumerate(columns):
            values = (row[index] for row in rows)
            table_columns.append(
                Column(column_name, infer_column_type(values)))
        table = scratch.create_table(name, table_columns)
        for row in rows:
            table.insert_tuple(row)


class MediatorSession:
    """A stateful query session over a mediator's global schema.

    Where :meth:`Mediator.query` rebuilds its scratch database per call
    (always-fresh snapshot semantics), a session keeps one scratch
    database alive and reuses already-materialized views across queries:
    the first query touching view V ships V's sub-queries, later ones
    hit the local copy.  ``refresh()`` drops materializations to pick up
    source-side changes (or redefined views).
    """

    def __init__(self, mediator: Mediator,
                 options: FederationOptions | None = None, *,
                 scratch: Database | None = None) -> None:
        self.mediator = mediator
        #: Session-level shipping override; the fragment cache stays the
        #: mediator-wide, generation-keyed one — unless that shared
        #: cache cannot hold entries (mediator configured with caching
        #: off) while this session asks for caching, in which case the
        #: session gets a private cache rather than a silently dead one.
        self.options = options or mediator.options
        if options is None:
            self._executor = mediator.executor
        else:
            cache = mediator.fragment_cache
            if options.fragment_cache_size > 0 and cache.maxsize <= 0:
                cache = FragmentCache(options.fragment_cache_size)
            self._executor = FederationExecutor(options, cache)
        #: The local database views materialize into.  Callers (e.g.
        #: :class:`~repro.federation.MediatedDatabank`) may supply one
        #: so mediated views live next to their other tables.
        self._scratch = scratch if scratch is not None \
            else Database("mediator-session")
        self._view_rows: dict[str, int] = {}
        #: Warn-level notes recorded at each view's first
        #: materialization, re-emitted on every cached hit — a consumer
        #: seeing the warm path still learns about fragment renames.
        self._view_warnings: dict[str, list[str]] = {}
        self.hits = 0      # views served from the local materialization
        self.misses = 0    # views shipped to the sources
        #: Telemetry hook (duck-typed): attached by the session layer.
        self.telemetry = None

    def attach_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry
        self._executor.attach_telemetry(telemetry)
        attach = getattr(self._scratch, "attach_telemetry", None)
        if attach is not None \
                and getattr(self._scratch, "telemetry", None) \
                is not telemetry:
            attach(telemetry)

    def execute(self, sql: str, views: list[str] | None = None,
                pushdown: bool = True
                ) -> tuple[ResultSet, MediationReport]:
        """Run *sql* on the global schema, materializing views lazily.

        The statement is parsed once: the same AST drives view pruning,
        filter pushdown and the final scratch-database execution.  An
        unparseable statement falls back to materializing every view
        and letting the scratch database report the real error.
        """
        report = MediationReport()
        started = time.perf_counter()
        statement, partial = self._ship_views(sql, views, pushdown, report)
        try:
            if statement is not None:
                outcome = self._scratch.execute_ast(statement)
                if not isinstance(outcome, ResultSet):
                    raise ExecutionError("statement did not produce rows")
                result = outcome
            else:
                result = self._scratch.query(sql)
        finally:
            self._drop_partials(partial)
        report.elapsed_s = time.perf_counter() - started
        return result, report

    def stream(self, sql: str, views: list[str] | None = None):
        """Run *sql* on the global schema, streaming the final result.

        Fragment shipping feeds the stream incrementally: each
        referenced view is materialized (cheapest first) exactly as in
        :meth:`execute`, but the scratch-database execution is a lazy
        cursor — the first row is available as soon as the last view
        lands, and ``LIMIT k`` global queries stop after *k* rows
        instead of materializing the reconciled result.

        Unlike :meth:`execute`, streams ship views *unfiltered*: a
        pushed-down filter would leave a partial materialization alive
        under the view's name for the cursor's whole lifetime, where
        any interleaved query on the session would collide with (or
        read) it.  Full materializations are cached instead, so
        follow-up queries get local hits.  A ``skip``-reduced view is
        still partial, though: it stays alive for this cursor only and
        is dropped when the cursor closes.  Returns
        ``(cursor, report)``.
        """
        from ..relational.result import Cursor

        report = MediationReport()
        started = time.perf_counter()
        statement, partial = self._ship_views(sql, views, False, report)
        try:
            if statement is not None:
                cursor = self._scratch.stream_ast(statement)
            else:
                cursor = self._scratch.stream(sql)
        except BaseException:
            # Eager plan/parse errors would otherwise strand the
            # skip-reduced copies under their view names forever.
            self._drop_partials(partial)
            raise
        if partial:
            # Pushdown is off, so these are skip-reduced views: tie
            # their cleanup to the cursor (close the inner stream
            # first — it holds the scratch read lock the drop needs).
            inner = cursor

            def cleanup() -> None:
                inner.close()
                self._drop_partials(partial)

            cursor = Cursor(inner.columns, inner, on_close=cleanup)
        report.elapsed_s = time.perf_counter() - started
        return cursor, report

    def _ship_views(self, sql: str, views: list[str] | None,
                    pushdown: bool, report: MediationReport):
        """Prune, cost-rank and materialize the views *sql* needs.

        All fragments of all missed views are dispatched to the sources
        in **one concurrent batch** (the executor's worker pool); the
        per-view reconciliation barrier then assembles each view from
        its fragments in definition order, and the views are stored in
        the cost ranking — so the report reads exactly as the serial
        shipping of earlier revisions, only faster.

        Returns ``(statement, partial)`` — the parsed statement (or
        ``None`` when unparseable) and the names of filtered, partial
        materializations the caller must drop when done.
        """
        statement = Mediator._try_parse(sql)
        return statement, self._ship_parsed(statement, views, pushdown,
                                            report)

    def _ship_parsed(self, statement: sql_ast.SelectQuery | None,
                     views: list[str] | None, pushdown: bool,
                     report: MediationReport) -> list[str]:
        """Ship the views an already-parsed statement needs (the body
        of :meth:`_ship_views`, reusable by callers that hold an AST —
        e.g. :class:`~repro.federation.MediatedDatabank`).  Returns the
        partial-materialization names to drop when the query is done."""
        if views is not None:
            # Dedupe (order-preserving): a repeated name is one view.
            wanted = list(dict.fromkeys(views))
        elif statement is not None:
            wanted = self.mediator.referenced_views_in(statement)
        else:
            wanted = self.mediator.view_names()

        for view_name in wanted:
            if view_name not in self.mediator._views:
                raise MediationError(f"unknown view {view_name!r}")

        # Cost-ranked source selection: cheapest views first in the
        # report and the scratch store (already-local ones are free).
        for view_name in wanted:
            view = self.mediator._views[view_name]
            report.view_costs[view_name] = (
                0.0 if view_name in self._view_rows
                else self.mediator.estimate_view_cost(view))
        ranked = sorted(wanted,
                        key=lambda name: (report.view_costs[name],
                                          wanted.index(name)))

        pushable = (_pushable_filters(statement, wanted, self.mediator)
                    if pushdown and statement is not None else {})
        missed: list[str] = []
        jobs: list[FragmentJob] = []
        for view_name in ranked:
            view = self.mediator._views[view_name]
            if view_name in self._view_rows:
                self.hits += 1
                report.view_rows[view.name] = self._view_rows[view.name]
                # Re-emit the first-materialization warnings: a cached
                # hit serves the same (renamed-column) data, so the
                # report must carry the same caveats.
                report.warnings.extend(
                    self._view_warnings.get(view_name, ()))
                continue
            missed.append(view_name)
            view_jobs = self.mediator._fragment_jobs(
                view, pushable.get(view_name))
            jobs.extend(view_jobs)
            for job in view_jobs:
                report.sub_queries.append((job.source, job.sql))
        if not jobs:
            return []

        # One batch, all views: a failing fragment (under the ``fail``
        # policy) aborts here, before anything is stored — no view of
        # this batch is ever observable partially shipped.
        tel = self.telemetry
        with (tel.span("federation.ship", views=",".join(missed),
                       fragments=len(jobs))
              if tel is not None else _NOOP):
            shipped = self._executor.ship(jobs)
        partial: list[str] = []
        try:
            for view_name in missed:
                view = self.mediator._views[view_name]
                results = shipped.get(view_name, [])
                Mediator._fold_results(report, results)
                warn_start = len(report.warnings)
                rows, columns = self.mediator._assemble_view(
                    view, results, report)
                view_warnings = report.warnings[warn_start:]
                Mediator._store(self._scratch, view.name, columns, rows)
                self.misses += 1
                filter_sql = pushable.get(view_name)
                skip_reduced = any(outcome.result is None
                                   for outcome in results)
                if filter_sql is not None or skip_reduced:
                    # A filtered materialization is partial: usable for
                    # this query only, never cached for later ones.
                    # Ditto a skip-reduced one — caching it would keep
                    # serving the dropped source's absence (with clean
                    # reports) long after the source recovered.
                    partial.append(view.name)
                    if filter_sql is not None:
                        report.pushed_filters[view.name] = filter_sql
                else:
                    self._view_rows[view.name] = len(rows)
                    self._view_warnings[view.name] = view_warnings
                report.view_rows[view.name] = len(rows)
        except BaseException:
            self._drop_partials(partial)
            raise
        return partial

    def _drop_partials(self, partial: list[str]) -> None:
        for view_name in partial:
            self._scratch.drop_table(view_name, if_exists=True)

    def query(self, sql: str) -> ResultSet:
        """Execute and return just the rows."""
        return self.execute(sql)[0]

    def refresh(self, views: list[str] | None = None) -> None:
        """Drop cached materializations (all views when none given)."""
        doomed = list(self._view_rows) if views is None else views
        for view_name in doomed:
            if self._view_rows.pop(view_name, None) is not None:
                self._view_warnings.pop(view_name, None)
                self._scratch.drop_table(view_name, if_exists=True)

    def explain(self, sql: str, pushdown: bool = True) -> "QueryPlan":
        """The mediation plan — pruned views, cost-ranked per-source
        sub-queries, pushed filters and materialization cache state —
        without shipping anything.

        Views still to be shipped appear as **batched** ``materialize``
        stages: all their fragments are dispatched in one concurrent
        batch through the worker pool, so the stage carries the whole
        batch (every fragment of every missed view) and the pool width.
        Already-materialized views stay as individual cached stages.
        """
        from ..api.plan import PlanStage, QueryPlan

        statement = Mediator._try_parse(sql)
        wanted = (self.mediator.referenced_views_in(statement)
                  if statement is not None else self.mediator.view_names())
        stages = [PlanStage(
            "prune", f"query references {len(wanted)} of "
            f"{len(self.mediator.view_names())} global view(s)",
            [", ".join(wanted) or "(none)"])]
        costs = {name: (0.0 if name in self._view_rows
                        else self.mediator.estimate_view_cost(
                            self.mediator._views[name]))
                 for name in wanted}
        ranked = sorted(wanted, key=lambda name: (costs[name],
                                                  wanted.index(name)))
        pushable = (_pushable_filters(statement, wanted, self.mediator)
                    if pushdown and statement is not None else {})
        hits = misses = 0
        batch: list[str] = []
        for view_name in ranked:
            view = self.mediator._views[view_name]
            if view_name in self._view_rows:
                hits += 1
                stages.append(PlanStage(
                    "materialize",
                    f"view {view_name!r}: local materialization reused",
                    cached=True))
                continue
            misses += 1
            label = (f"{view_name!r} ({view.reconciliation}, "
                     f"cost~{costs[view_name]:.0f}")
            if view_name in pushable:
                label += f", pushdown [{pushable[view_name]}]"
            label += ")"
            batch.extend(f"{label} <- {fragment.source}: {fragment.sql}"
                         for fragment in view.fragments)
        if batch:
            workers = min(self.options.max_workers, len(batch))
            stages.append(PlanStage(
                "materialize",
                f"batch of {misses} view(s), {len(batch)} fragment(s) "
                f"shipped in parallel ({workers} worker(s))",
                batch))
        stages.append(PlanStage(
            "sql", "scratch database executes the global query", [sql]))
        plan = QueryPlan(
            statement=sql, base_sql=sql, rewritten_sql=sql,
            join_strategy="mediation", stages=stages,
            cache_hits=hits, cache_misses=misses)
        if statement is not None:
            try:
                plan.db_plan = self._scratch.explain(statement)
            except Exception:
                plan.db_plan = None  # views not materialized yet
        return plan

    def close(self) -> None:
        self.refresh()


def _pushable_filters(statement: sql_ast.SelectQuery, wanted: list[str],
                      mediator: Mediator) -> dict[str, str]:
    """WHERE conjuncts that can run at the sources, per view.

    A conjunct qualifies when it touches exactly one FROM leaf, that
    leaf is a reference to a *wanted* view appearing once, the view's
    reconciliation is order-insensitive (``prefer_first`` elects rows
    by precedence *before* filtering, so pre-filtering could change the
    winners) and the leaf is not on the nullable side of an outer join
    (pre-filtering there would turn matched rows into NULL-padded
    ones).  The global query keeps the conjunct regardless — pushdown
    only reduces what the sources ship.
    """
    if statement.is_compound:
        return {}
    core = statement.core
    if core.from_clause is None or core.where is None:
        return {}
    wanted_lower = {name.lower(): name for name in wanted}
    safe = null_safe_bindings(core.from_clause)
    # Occurrences are counted over the WHOLE statement (subqueries
    # included): the scratch database holds one materialization per
    # view, so a second reference anywhere — e.g. inside an IN
    # subquery — would read the same pre-filtered copy and see too few
    # rows.
    occurrences: dict[str, int] = {}
    for node in sql_ast.iter_query_nodes(statement):
        if isinstance(node, sql_ast.TableRef) \
                and node.name.lower() in wanted_lower:
            view_name = wanted_lower[node.name.lower()]
            occurrences[view_name] = occurrences.get(view_name, 0) + 1
    view_of_binding: dict[str, str] = {}
    binding_columns: dict[str, list[str] | None] = {}
    for leaf in from_leaves(core.from_clause):
        binding = binding_of(leaf)
        if binding is None:
            continue
        columns = None
        if isinstance(leaf, sql_ast.TableRef) \
                and leaf.name.lower() in wanted_lower:
            view_name = wanted_lower[leaf.name.lower()]
            view = mediator._views[view_name]
            if view.reconciliation != "prefer_first" and binding in safe:
                columns = _view_columns(mediator, view)
                view_of_binding[binding] = view_name
        binding_columns[binding] = columns

    pushes: dict[str, list[sql_ast.Expr]] = {}
    for conjunct in sql_ast.conjuncts(core.where):
        touched = referenced_bindings(conjunct, binding_columns)
        if touched is None or len(touched) != 1:
            continue
        binding = next(iter(touched))
        view_name = view_of_binding.get(binding)
        if view_name is None or occurrences.get(view_name) != 1:
            continue
        pushes.setdefault(view_name, []).append(conjunct)

    filters: dict[str, str] = {}
    for view_name, conjunct_list in pushes.items():
        requalified = [
            map_expr(conjunct, lambda node, view_name=view_name:
                     sql_ast.ColumnRef(node.name, view_name)
                     if isinstance(node, sql_ast.ColumnRef) else node)
            for conjunct in conjunct_list]
        filters[view_name] = " AND ".join(
            f"({render_expr(conjunct)})" for conjunct in requalified)
    return filters


def _view_columns(mediator: Mediator,
                  view: GlobalView) -> list[str] | None:
    """The view's output columns, derived from its first fragment."""
    fragment = view.fragments[0]
    statement = Mediator._try_parse(fragment.sql)
    if statement is None:
        return None
    database = mediator.source(fragment.source)
    return query_output_columns(statement, database.catalog)
