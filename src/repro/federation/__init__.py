"""Data-source federation: foreign data wrappers (the postgres_fdw
analogue), a GAV mediator, and the REST integration layer of Fig. 1."""

from .databank import MediatedDatabank
from .errors import (FederationError, ForeignTableError, MediationError,
                     RestError)
from .executor import (FAIL, FAILURE_POLICIES, RETRY, SKIP,
                       FederationExecutor, FederationOptions, FragmentCache,
                       FragmentJob, FragmentResult, PolicyOutcome,
                       run_with_policy)
from .foreign import (CallableSource, CsvSource, ForeignSource,
                      ForeignTable, QuerySource, RemoteTableSource,
                      attach_foreign_table)
from .mediator import (GlobalView, MediationReport, Mediator,
                       MediatorSession, ViewFragment)
from .rest import CrosseRestService, Response, RestRouter

__all__ = [
    "ForeignSource", "ForeignTable", "RemoteTableSource", "QuerySource",
    "CsvSource", "CallableSource", "attach_foreign_table",
    "Mediator", "MediatorSession", "MediatedDatabank", "GlobalView",
    "ViewFragment", "MediationReport",
    "FederationExecutor", "FederationOptions", "FragmentCache",
    "FragmentJob", "FragmentResult",
    "FAIL", "SKIP", "RETRY", "FAILURE_POLICIES",
    "PolicyOutcome", "run_with_policy",
    "RestRouter", "CrosseRestService", "Response",
    "FederationError", "ForeignTableError", "MediationError", "RestError",
]
