"""Data-source federation: foreign data wrappers (the postgres_fdw
analogue), a GAV mediator, and the REST integration layer of Fig. 1."""

from .errors import (FederationError, ForeignTableError, MediationError,
                     RestError)
from .foreign import (CallableSource, CsvSource, ForeignSource,
                      ForeignTable, QuerySource, RemoteTableSource,
                      attach_foreign_table)
from .mediator import (GlobalView, MediationReport, Mediator,
                       MediatorSession, ViewFragment)
from .rest import CrosseRestService, Response, RestRouter

__all__ = [
    "ForeignSource", "ForeignTable", "RemoteTableSource", "QuerySource",
    "CsvSource", "CallableSource", "attach_foreign_table",
    "Mediator", "MediatorSession", "GlobalView", "ViewFragment",
    "MediationReport",
    "RestRouter", "CrosseRestService", "Response",
    "FederationError", "ForeignTableError", "MediationError", "RestError",
]
