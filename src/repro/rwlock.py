"""A reentrant readers-writer lock for the service layer.

The streaming execution surface lets many sessions read one
:class:`~repro.relational.Database` (or :class:`~repro.rdf.TripleStore`)
concurrently while DML / ANALYZE / annotation-acceptance writers get
exclusive access.  The lock is:

* **shared for readers** — any number of threads may hold it for
  reading at once;
* **exclusive for writers** — one thread, no concurrent readers;
* **writer-preferring** — new readers queue behind a waiting writer so
  a steady read workload cannot starve mutations;
* **reentrant** — a thread may re-acquire a lock it already holds in
  the same mode, and the write holder may also take the read side
  (statement execution nested inside DML, e.g. ``INSERT ... SELECT``);
* **hold-based on the read side** — every read acquisition returns a
  :class:`ReadHold` carrying its own accounting unit, so a long-lived
  holder (a streaming cursor's generator) can be released from a
  *different* thread than the one that acquired it — cursors are
  handed between worker threads and may be finalized by the GC on an
  arbitrary thread.  Each hold captures its owner thread's depth
  record, so cross-thread release keeps the owner's nesting state
  exact (no stale-depth barging past writers, no phantom upgrade
  refusals).

Upgrading (read held → write requested by the same thread) deadlocks by
construction in any RW lock, so it raises ``RuntimeError`` instead —
the practical consequence is that a thread must exhaust or close its
open cursors before mutating the same database.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class _ThreadDepth:
    """Per-thread read-nesting record, shared with that thread's holds.

    Mutated only under the lock's condition, so a hold released from a
    foreign thread updates the owner's record consistently.
    """

    __slots__ = ("depth",)

    def __init__(self) -> None:
        self.depth = 0


class ReadHold:
    """One read acquisition; ``release()`` is idempotent and may be
    called from any thread."""

    __slots__ = ("_lock", "_state", "_piggyback", "_released")

    def __init__(self, lock: "RWLock", state: _ThreadDepth,
                 piggyback: bool) -> None:
        self._lock = lock
        self._state = state
        self._piggyback = piggyback
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._lock._release_unit(self._state, self._piggyback)


class RWLock:
    """Reentrant, writer-preferring readers-writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0        # outstanding read units
        self._waiting_writers = 0
        self._writer: int | None = None  # ident of the write holder
        self._write_depth = 0
        self._local = threading.local()
        #: Telemetry hook (duck-typed): when attached, acquisitions
        #: that actually block record their wait time.  Uncontended
        #: acquisitions never touch the registry.
        self.telemetry = None
        self._read_wait = self._write_wait = None

    def attach_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry
        if telemetry is not None:
            family = telemetry.metrics.histogram(
                "repro_rwlock_wait_seconds",
                "Time spent blocked acquiring the readers-writer lock",
                labels=("mode",))
            self._read_wait = family.labels("read")
            self._write_wait = family.labels("write")

    # -- introspection (tests / diagnostics) --------------------------------

    @property
    def write_held(self) -> bool:
        return self._writer is not None

    @property
    def active_readers(self) -> int:
        return self._active_readers

    def _state(self) -> _ThreadDepth:
        state = getattr(self._local, "state", None)
        if state is None:
            state = self._local.state = _ThreadDepth()
        return state

    def _read_depth(self) -> int:
        return self._state().depth

    # -- read side ----------------------------------------------------------

    def read_hold(self) -> ReadHold:
        """Acquire one read unit, returning its hold.

        A thread inside its own write section piggybacks (no shared
        unit: the write lock is already exclusive).  A thread that
        still holds a read — checked under the condition, so a
        cross-thread release cannot leave it stale — takes its unit
        without waiting: writers are already excluded by the read it
        holds, and queueing behind its own writer-preference entry
        would self-deadlock.
        """
        me = threading.get_ident()
        state = self._state()
        if self._writer == me:
            with self._cond:
                state.depth += 1
            return ReadHold(self, state, piggyback=True)
        with self._cond:
            if state.depth == 0 and (self._writer is not None
                                     or self._waiting_writers):
                started = time.perf_counter() \
                    if self.telemetry is not None else None
                while state.depth == 0 and (self._writer is not None
                                            or self._waiting_writers):
                    self._cond.wait()
                if started is not None:
                    self._read_wait.observe(time.perf_counter() - started)
            self._active_readers += 1
            state.depth += 1
        return ReadHold(self, state, piggyback=False)

    def _release_unit(self, state: _ThreadDepth, piggyback: bool) -> None:
        with self._cond:
            state.depth -= 1
            if not piggyback:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._cond.notify_all()

    def acquire_read(self) -> None:
        """Same-thread read acquire (released by :meth:`release_read`)."""
        holds = getattr(self._local, "holds", None)
        if holds is None:
            holds = self._local.holds = []
        holds.append(self.read_hold())

    def release_read(self) -> None:
        holds = getattr(self._local, "holds", None)
        if not holds:
            raise RuntimeError("release_read without acquire_read")
        holds.pop().release()

    @contextmanager
    def read_locked(self):
        hold = self.read_hold()
        try:
            yield self
        finally:
            hold.release()

    # -- write side ----------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        if self._writer == me:
            self._write_depth += 1
            return
        state = self._state()
        with self._cond:
            if state.depth:
                # Only this thread adds to its own depth, and it is
                # here, not reading — so the depth cannot rise while
                # we wait below; checking once is enough.
                raise RuntimeError(
                    "cannot upgrade a read lock to a write lock; close "
                    "open cursors before mutating")
            self._waiting_writers += 1
            try:
                if self._writer is not None or self._active_readers:
                    started = time.perf_counter() \
                        if self.telemetry is not None else None
                    while self._writer is not None or self._active_readers:
                        self._cond.wait()
                    if started is not None:
                        self._write_wait.observe(
                            time.perf_counter() - started)
                self._writer = me
                self._write_depth = 1
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        if self._writer != threading.get_ident():
            raise RuntimeError("release_write by a non-holder")
        self._write_depth -= 1
        if self._write_depth:
            return
        with self._cond:
            self._writer = None
            self._cond.notify_all()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
