"""Builders shared by the E1-E8 benchmarks (DESIGN.md §5).

Everything is seeded so a benchmark row is reproducible in isolation.
"""

from __future__ import annotations

import random

from ..core.engine import SESQLEngine
from ..core.stored_queries import StoredQueryRegistry
from ..crosse.context import ContextTracker
from ..rdf.store import TripleStore
from ..relational.engine import Database
from ..smartground.datagen import SmartGroundConfig, generate_databank
from ..smartground.ontology import researcher_kb
from ..smartground.queries import DANGER_QUERY_SPARQL


def scaled_databank(target_elem_rows: int, seed: int = 17) -> Database:
    """A SmartGround databank with ~target rows in elem_contained.

    The generator averages ``avg_elements_per_landfill`` rows per
    landfill, so the landfill count is derived from the target.
    """
    per_landfill = 6
    config = SmartGroundConfig(
        n_landfills=max(1, target_elem_rows // per_landfill),
        avg_elements_per_landfill=per_landfill,
        seed=seed)
    return generate_databank(config)


def bench_engine(db: Database, kb: TripleStore | None = None,
                 join_strategy: str = "tempdb") -> SESQLEngine:
    """An engine wired like the platform wires it (dangerQuery included)."""
    registry = StoredQueryRegistry()
    registry.register("dangerQuery", DANGER_QUERY_SPARQL)
    return SESQLEngine(db, kb if kb is not None else researcher_kb(),
                       stored_queries=registry,
                       join_strategy=join_strategy)


def seeded_tracker(n_users: int, concepts_per_user: int = 20,
                   concept_pool: int = 100, resources_per_user: int = 10,
                   seed: int = 5) -> ContextTracker:
    """A context tracker with clustered synthetic user activity."""
    rng = random.Random(seed)
    tracker = ContextTracker()
    concepts = [f"concept{i}" for i in range(concept_pool)]
    resources = [f"lf{i:04d}" for i in range(concept_pool * 4)]
    for index in range(n_users):
        username = f"user{index:04d}"
        # Two broad communities with overlapping vocabularies.
        community_offset = 0 if index % 2 == 0 else concept_pool // 2
        for _ in range(concepts_per_user):
            concept = concepts[
                (community_offset + rng.randrange(concept_pool // 2))
                % concept_pool]
            tracker.record_concepts(
                username, [concept],
                event=rng.choice(["query", "explore", "annotate"]))
        for _ in range(resources_per_user):
            tracker.record_resource(username, rng.choice(resources))
    return tracker


def print_series(title: str, headers: list[str],
                 rows: list[tuple]) -> None:
    """Aligned text table for EXPERIMENTS.md-style series output."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    print(f"\n== {title} ==")
    print("  ".join(header.ljust(width)
                    for header, width in zip(headers, widths)))
    for row in cells:
        print("  ".join(cell.ljust(width)
                        for cell, width in zip(row, widths)))
