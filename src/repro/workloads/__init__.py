"""Shared builders and reporting helpers for the benchmark harness."""

from .builders import (bench_engine, print_series, scaled_databank,
                       seeded_tracker)

__all__ = ["scaled_databank", "bench_engine", "seeded_tracker",
           "print_series"]
