"""Selectivity-ordered BGP join planning over store statistics.

Mirrors the estimation style of :mod:`repro.planner` on the knowledge-
base side: each triple pattern's cardinality is estimated from the
store's O(1) :class:`~repro.rdf.store.StoreStatistics` (constant
positions use exact index counts; variable positions already bound by
earlier patterns divide by the distinct count of that position), and a
greedy pass picks the cheapest pattern next — the id-level analogue of
the relational planner's left-deep join ordering.

The planner is pure: it never touches the store's data, only its
statistics, so it can be unit-tested against hand-built stores and its
decisions surface verbatim in ``explain()``-style notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rdf.store import StoreStatistics, TermDictionary
from . import ast


@dataclass
class PatternStep:
    """One step of a planned BGP: the pattern, its cardinality estimate
    given the variables bound before it runs, and that bound set."""

    pattern: ast.TriplePattern
    estimate: float
    bound_before: frozenset[ast.Variable] = field(default_factory=frozenset)

    def note(self) -> str:
        subject = _position_note(self.pattern.subject, self.bound_before)
        predicate = _position_note(self.pattern.predicate, self.bound_before)
        obj = _position_note(self.pattern.object, self.bound_before)
        return (f"{subject} {predicate} {obj} "
                f"(est {self.estimate:.0f})")


def _position_note(position, bound: frozenset) -> str:
    if isinstance(position, ast.Variable):
        marker = "*" if position in bound else ""
        return position.n3() + marker
    if isinstance(position, ast.Path):
        return "<path>"
    return position.n3()


def estimate_pattern(pattern: ast.TriplePattern,
                     bound: frozenset[ast.Variable] | set[ast.Variable],
                     stats: StoreStatistics,
                     dictionary: TermDictionary) -> float:
    """Estimated matches of one pattern given already-bound variables.

    Constant positions are encoded through the dictionary — a constant
    the store has never interned makes the estimate exactly 0.  A
    variable position bound by an earlier pattern contributes the
    uniform-selectivity factor ``1 / distinct(position)``, the same
    independence assumption :mod:`repro.planner.estimate` applies to
    relational equi-joins.
    """
    predicate = pattern.predicate
    if isinstance(predicate, ast.Path):
        # Paths bypass the indexes; start from the full triple count and
        # credit bound endpoints so a grounded path still runs early.
        estimate = float(max(stats.triple_count(), 1))
        if not isinstance(pattern.subject, ast.Variable) \
                or pattern.subject in bound:
            estimate /= max(stats.distinct_subjects(), 1)
        if not isinstance(pattern.object, ast.Variable) \
                or pattern.object in bound:
            estimate /= max(stats.distinct_objects(), 1)
        return max(estimate, 1.0)

    s_id = p_id = o_id = None
    if not isinstance(pattern.subject, ast.Variable):
        s_id = dictionary.lookup(pattern.subject)
        if s_id is None:
            return 0.0
    if not isinstance(predicate, ast.Variable):
        p_id = dictionary.lookup(predicate)
        if p_id is None:
            return 0.0
    if not isinstance(pattern.object, ast.Variable):
        o_id = dictionary.lookup(pattern.object)
        if o_id is None:
            return 0.0

    estimate = float(stats.count_ids(s_id, p_id, o_id))
    if isinstance(pattern.subject, ast.Variable) \
            and pattern.subject in bound:
        estimate /= max(stats.distinct_subjects(), 1)
    if isinstance(predicate, ast.Variable) and predicate in bound:
        estimate /= max(stats.distinct_predicates(), 1)
    if isinstance(pattern.object, ast.Variable) \
            and pattern.object in bound:
        # A variable in two positions (``?x p ?x``) only discounts once
        # per distinct dimension; subject/object dimensions differ, so
        # double-counting is acceptable as a pessimism guard.
        estimate /= max(stats.distinct_objects(), 1)
    return estimate


def order_bgp(patterns: list[ast.TriplePattern],
              bound: set[ast.Variable],
              stats: StoreStatistics,
              dictionary: TermDictionary) -> list[PatternStep]:
    """Greedy selectivity ordering of a run of triple patterns.

    *bound* is the set of variables carrying bindings in the incoming
    solution state — computed over **all** incoming solutions, not the
    first one, so heterogeneous boundness after OPTIONAL still yields a
    correct ordering picture.  Returns the patterns in execution order
    with their estimates; ties fall back to the written order (the sort
    is stable), matching the seed evaluator's behaviour on uniform
    stores so plans stay reproducible.
    """
    remaining = list(patterns)
    bound_now: set[ast.Variable] = set(bound)
    steps: list[PatternStep] = []
    while remaining:
        best_index = 0
        best_estimate = None
        for index, pattern in enumerate(remaining):
            estimate = estimate_pattern(pattern, bound_now, stats,
                                        dictionary)
            if best_estimate is None or estimate < best_estimate:
                best_index, best_estimate = index, estimate
        pattern = remaining.pop(best_index)
        steps.append(PatternStep(pattern, best_estimate,
                                 frozenset(bound_now)))
        bound_now.update(pattern.variables())
    return steps
