"""FILTER / BIND expression evaluation.

Values flow as RDF terms; arithmetic and comparisons unwrap literal
values.  Per the SPARQL spec, expression errors (type errors, unbound
variables outside BOUND) make the enclosing FILTER reject the solution —
signalled here with :class:`FilterError`.
"""

from __future__ import annotations

import re
from typing import Any

from ..rdf.terms import BNode, IRI, Literal, Term
from . import ast
from .errors import FilterError

Solution = dict  # Variable -> Term


def evaluate(expr: ast.Expr, solution: Solution) -> Any:
    """Evaluate to a term or raw Python value; raises FilterError."""
    if isinstance(expr, ast.TermExpr):
        return expr.term
    if isinstance(expr, ast.VarExpr):
        value = solution.get(expr.variable)
        if value is None:
            raise FilterError(f"unbound variable {expr.variable.n3()}")
        return value
    if isinstance(expr, ast.UnaryExpr):
        if expr.op == "!":
            return not effective_boolean(evaluate(expr.operand, solution))
        value = _number(evaluate(expr.operand, solution))
        return -value if expr.op == "-" else value
    if isinstance(expr, ast.BinaryExpr):
        return _binary(expr, solution)
    if isinstance(expr, ast.CallExpr):
        return _call(expr, solution)
    raise FilterError(f"cannot evaluate {type(expr).__name__}")


def evaluate_boolean(expr: ast.Expr, solution: Solution) -> bool:
    """FILTER semantics: errors count as rejection."""
    try:
        return effective_boolean(evaluate(expr, solution))
    except FilterError:
        return False


def effective_boolean(value: Any) -> bool:
    """SPARQL effective boolean value."""
    if isinstance(value, bool):
        return value
    if isinstance(value, Literal):
        inner = value.value
        if isinstance(inner, bool):
            return inner
        if isinstance(inner, (int, float)):
            return inner != 0
        if isinstance(inner, str):
            return len(inner) > 0
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return len(value) > 0
    raise FilterError(f"no effective boolean value for {value!r}")


def _plain(value: Any) -> Any:
    """Unwrap literals to raw Python values; keep IRIs/BNodes as terms."""
    if isinstance(value, Literal):
        return value.value
    return value


def _number(value: Any) -> int | float:
    plain = _plain(value)
    if isinstance(plain, bool) or not isinstance(plain, (int, float)):
        raise FilterError(f"expected a number, got {plain!r}")
    return plain


def _string(value: Any) -> str:
    plain = _plain(value)
    if not isinstance(plain, str):
        raise FilterError(f"expected a string, got {plain!r}")
    return plain


def _binary(expr: ast.BinaryExpr, solution: Solution) -> Any:
    op = expr.op
    if op == "&&":
        return (effective_boolean(evaluate(expr.left, solution))
                and effective_boolean(evaluate(expr.right, solution)))
    if op == "||":
        # SPARQL || is true if either side is true even when the other errs.
        left_error = right_error = False
        left = right = False
        try:
            left = effective_boolean(evaluate(expr.left, solution))
        except FilterError:
            left_error = True
        if left:
            return True
        try:
            right = effective_boolean(evaluate(expr.right, solution))
        except FilterError:
            right_error = True
        if right:
            return True
        if left_error or right_error:
            raise FilterError("|| operand errored")
        return False

    left = evaluate(expr.left, solution)
    right = evaluate(expr.right, solution)
    if op in ("+", "-", "*", "/"):
        a, b = _number(left), _number(right)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if b == 0:
            raise FilterError("division by zero")
        return a / b
    if op in ("=", "!="):
        equal = _terms_equal(left, right)
        return equal if op == "=" else not equal
    # Ordered comparison.
    a, b = _plain(left), _plain(right)
    if isinstance(a, bool) or isinstance(b, bool):
        raise FilterError("booleans are not ordered")
    numeric = (isinstance(a, (int, float)) and isinstance(b, (int, float)))
    stringy = (isinstance(a, str) and isinstance(b, str))
    if not numeric and not stringy:
        raise FilterError(
            f"cannot order {type(a).__name__} against {type(b).__name__}")
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b


def _terms_equal(left: Any, right: Any) -> bool:
    if isinstance(left, (IRI, BNode)) or isinstance(right, (IRI, BNode)):
        return left == right
    a, b = _plain(left), _plain(right)
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
            and not isinstance(a, bool):
        return float(a) == float(b)
    return a == b


def _call(expr: ast.CallExpr, solution: Solution) -> Any:
    name = expr.name

    def arg(index: int) -> Any:
        return evaluate(expr.args[index], solution)

    def require(count: int, maximum: int | None = None) -> None:
        maximum = maximum if maximum is not None else count
        if not (count <= len(expr.args) <= maximum):
            raise FilterError(f"{name} arity mismatch")

    if name == "BOUND":
        require(1)
        inner = expr.args[0]
        if not isinstance(inner, ast.VarExpr):
            raise FilterError("BOUND expects a variable")
        return inner.variable in solution
    if name == "COALESCE":
        for candidate in expr.args:
            try:
                return evaluate(candidate, solution)
            except FilterError:
                continue
        raise FilterError("COALESCE: all arguments errored")
    if name == "IF":
        require(3)
        condition = effective_boolean(arg(0))
        return arg(1) if condition else arg(2)
    if name == "STR":
        require(1)
        value = arg(0)
        if isinstance(value, IRI):
            return value.value
        if isinstance(value, Literal):
            return value.lexical
        if isinstance(value, (str, int, float, bool)):
            return Literal(value).lexical
        raise FilterError("STR expects an IRI or literal")
    if name == "LANG":
        require(1)
        value = arg(0)
        if isinstance(value, Literal):
            return value.lang or ""
        raise FilterError("LANG expects a literal")
    if name == "DATATYPE":
        require(1)
        value = arg(0)
        if isinstance(value, Literal):
            return IRI(value.datatype)
        raise FilterError("DATATYPE expects a literal")
    if name in ("ISIRI", "ISURI"):
        require(1)
        return isinstance(arg(0), IRI)
    if name == "ISLITERAL":
        require(1)
        value = arg(0)
        return isinstance(value, Literal) \
            or isinstance(value, (str, int, float, bool))
    if name == "ISBLANK":
        require(1)
        return isinstance(arg(0), BNode)
    if name == "SAMETERM":
        require(2)
        return arg(0) == arg(1)
    if name == "REGEX":
        require(2, 3)
        text = _string(arg(0))
        pattern = _string(arg(1))
        flags = 0
        if len(expr.args) == 3 and "i" in _string(arg(2)):
            flags = re.IGNORECASE
        try:
            return re.search(pattern, text, flags) is not None
        except re.error as exc:
            raise FilterError(f"bad REGEX pattern: {exc}") from exc
    if name == "STRSTARTS":
        require(2)
        return _string(arg(0)).startswith(_string(arg(1)))
    if name == "STRENDS":
        require(2)
        return _string(arg(0)).endswith(_string(arg(1)))
    if name == "CONTAINS":
        require(2)
        return _string(arg(1)) in _string(arg(0))
    if name == "LCASE":
        require(1)
        return _string(arg(0)).lower()
    if name == "UCASE":
        require(1)
        return _string(arg(0)).upper()
    if name == "STRLEN":
        require(1)
        return len(_string(arg(0)))
    if name == "ABS":
        require(1)
        return abs(_number(arg(0)))
    raise FilterError(f"unknown function {name}")
