"""Exception hierarchy for the SPARQL engine."""

from __future__ import annotations


class SparqlError(Exception):
    """Base class for all SPARQL-layer errors."""


class SparqlSyntaxError(SparqlError):
    """Malformed SPARQL query text."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        location = f" at offset {position}" if position is not None else ""
        super().__init__(f"{message}{location}")


class SparqlEvalError(SparqlError):
    """Runtime evaluation failures (bad function usage, type errors)."""


class FilterError(SparqlEvalError):
    """Internal: a FILTER expression errored; the solution is dropped."""
