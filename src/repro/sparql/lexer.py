"""SPARQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SparqlSyntaxError

_PUNCT = "{}().;,"
# Longest first.
_OPERATORS = ("&&", "||", "^^", "!=", "<=", ">=", "=", "<", ">", "!",
              "+", "-", "*", "/", "^", "|", "?")


@dataclass
class Token:
    type: str  # var, iri, pname, string, number, word, punct, op, eof
    value: object
    position: int

    def is_word(self, *names: str) -> bool:
        return (self.type == "word"
                and str(self.value).upper() in names)

    def is_punct(self, *chars: str) -> bool:
        return self.type == "punct" and self.value in chars

    def is_op(self, *ops: str) -> bool:
        return self.type == "op" and self.value in ops

    def describe(self) -> str:
        if self.type == "eof":
            return "end of input"
        return repr(self.value)


class SparqlLexer:
    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0

    def _error(self, message: str) -> SparqlSyntaxError:
        return SparqlSyntaxError(message, self.position)

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.text[index] if index < len(self.text) else ""

    def _skip_ws(self) -> None:
        while self.position < len(self.text):
            char = self._peek()
            if char in " \t\r\n":
                self.position += 1
            elif char == "#":
                while self.position < len(self.text) \
                        and self._peek() != "\n":
                    self.position += 1
            else:
                return

    def tokens(self) -> list[Token]:
        result: list[Token] = []
        while True:
            self._skip_ws()
            start = self.position
            if self.position >= len(self.text):
                result.append(Token("eof", None, start))
                return result
            char = self._peek()
            if char in "?$" and (self._peek(1).isalnum()
                                 or self._peek(1) == "_"):
                self.position += 1
                result.append(Token("var", self._read_word(), start))
            elif char == "<":
                # '<' begins an IRI only when it looks like one; otherwise
                # it is the less-than operator.
                iri = self._try_read_iri()
                if iri is not None:
                    result.append(Token("iri", iri, start))
                else:
                    if self._peek(1) == "=":
                        self.position += 2
                        result.append(Token("op", "<=", start))
                    else:
                        self.position += 1
                        result.append(Token("op", "<", start))
            elif char in "\"'":
                result.append(Token("string", self._read_string(), start))
            elif char.isdigit() or (char == "." and self._peek(1).isdigit()):
                result.append(Token("number", self._read_number(), start))
            elif char in _PUNCT:
                self.position += 1
                result.append(Token("punct", char, start))
            elif char == "_" and self._peek(1) == ":":
                self.position += 2
                result.append(Token("bnode", self._read_word(), start))
            elif char.isalpha() or char == "_":
                word = self._read_pname_or_word()
                result.append(word_token(word, start))
            else:
                op = self._read_operator()
                if op is None:
                    raise self._error(f"unexpected character {char!r}")
                result.append(Token("op", op, start))

    def _try_read_iri(self) -> str | None:
        end = self.position + 1
        while end < len(self.text):
            char = self.text[end]
            if char == ">":
                value = self.text[self.position + 1:end]
                if any(c in value for c in ' "{}|\\^`\n'):
                    return None
                self.position = end + 1
                return value
            if char in " \t\n":
                return None
            end += 1
        return None

    def _read_string(self) -> str:
        quote = self._peek()
        self.position += 1
        pieces: list[str] = []
        while True:
            if self.position >= len(self.text):
                raise self._error("unterminated string literal")
            char = self._peek()
            if char == "\\":
                escape = self._peek(1)
                mapping = {"n": "\n", "t": "\t", "r": "\r", '"': '"',
                           "'": "'", "\\": "\\"}
                if escape not in mapping:
                    raise self._error(f"unknown escape \\{escape}")
                pieces.append(mapping[escape])
                self.position += 2
            elif char == quote:
                self.position += 1
                return "".join(pieces)
            elif char == "\n":
                raise self._error("newline in string literal")
            else:
                pieces.append(char)
                self.position += 1

    def _read_number(self) -> int | float:
        start = self.position
        saw_dot = saw_exp = False
        while self.position < len(self.text):
            char = self._peek()
            if char.isdigit():
                self.position += 1
            elif char == "." and not saw_dot and self._peek(1).isdigit():
                saw_dot = True
                self.position += 1
            elif char in "eE" and not saw_exp \
                    and (self._peek(1).isdigit()
                         or (self._peek(1) in "+-"
                             and self._peek(2).isdigit())):
                saw_exp = True
                self.position += 2 if self._peek(1) in "+-" else 1
            else:
                break
        text = self.text[start:self.position]
        return float(text) if (saw_dot or saw_exp) else int(text)

    def _read_word(self) -> str:
        start = self.position
        while self.position < len(self.text):
            char = self._peek()
            if char.isalnum() or char == "_":
                self.position += 1
            else:
                break
        return self.text[start:self.position]

    def _read_pname_or_word(self) -> str:
        start = self.position
        while self.position < len(self.text):
            char = self._peek()
            if char.isalnum() or char in "_-":
                self.position += 1
            elif char == ":" and (self._peek(1).isalnum()
                                  or self._peek(1) in "_"
                                  or True):
                self.position += 1
            elif char == "." and (self._peek(1).isalnum()
                                  or self._peek(1) == "_"):
                # dots are allowed inside local names but not at the end
                self.position += 1
            else:
                break
        return self.text[start:self.position]

    def _read_operator(self) -> str | None:
        for op in _OPERATORS:
            if self.text.startswith(op, self.position):
                self.position += len(op)
                return op
        return None


def word_token(word: str, start: int) -> Token:
    if ":" in word:
        return Token("pname", word, start)
    return Token("word", word, start)


def tokenize(text: str) -> list[Token]:
    return SparqlLexer(text).tokens()
