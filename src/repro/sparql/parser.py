"""Recursive-descent SPARQL parser (SELECT / ASK / CONSTRUCT subset).

Grammar coverage: PREFIX declarations, basic graph patterns with ``;``
and ``,`` abbreviations, FILTER, OPTIONAL, UNION, BIND .. AS, nested
groups, property paths (``^ / | * + ?``), DISTINCT, ORDER BY, LIMIT and
OFFSET.
"""

from __future__ import annotations

from ..rdf.namespace import RDF_TYPE, NamespaceManager
from ..rdf.terms import BNode, IRI, Literal
from ..rdf.turtle import _typed_literal
from . import ast
from .errors import SparqlSyntaxError
from .lexer import Token, tokenize

_BUILTINS = frozenset("""
    BOUND STR LANG DATATYPE REGEX STRSTARTS STRENDS CONTAINS LCASE UCASE
    STRLEN ABS ISIRI ISURI ISLITERAL ISBLANK SAMETERM IF COALESCE
""".split())


class SparqlParser:
    def __init__(self, text: str,
                 namespaces: NamespaceManager | None = None) -> None:
        self.tokens = tokenize(text)
        self.index = 0
        self.namespaces = namespaces or NamespaceManager()
        self._bnodes: dict[str, BNode] = {}

    # -- token plumbing ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self.tokens[self.index]
        if token.type != "eof":
            self.index += 1
        return token

    def _error(self, message: str) -> SparqlSyntaxError:
        return SparqlSyntaxError(message, self._peek().position)

    def _expect_word(self, *names: str) -> Token:
        if self._peek().is_word(*names):
            return self._next()
        raise self._error(
            f"expected {' or '.join(names)}, found {self._peek().describe()}")

    def _expect_punct(self, char: str) -> Token:
        if self._peek().is_punct(char):
            return self._next()
        raise self._error(
            f"expected {char!r}, found {self._peek().describe()}")

    def _accept_word(self, *names: str) -> bool:
        if self._peek().is_word(*names):
            self._next()
            return True
        return False

    def _accept_punct(self, char: str) -> bool:
        if self._peek().is_punct(char):
            self._next()
            return True
        return False

    def _at_end(self) -> bool:
        return self._peek().type == "eof"

    # -- entry point --------------------------------------------------------------

    def parse(self) -> ast.Query:
        self._prologue()
        token = self._peek()
        if token.is_word("SELECT"):
            query = self._select()
        elif token.is_word("ASK"):
            query = self._ask()
        elif token.is_word("CONSTRUCT"):
            query = self._construct()
        else:
            raise self._error("expected SELECT, ASK or CONSTRUCT")
        if not self._at_end():
            raise self._error(
                f"unexpected trailing input {self._peek().describe()}")
        return query

    def _prologue(self) -> None:
        while self._peek().is_word("PREFIX", "BASE"):
            keyword = self._next()
            if str(keyword.value).upper() == "PREFIX":
                token = self._next()
                if token.type != "pname" \
                        or not str(token.value).endswith(":"):
                    raise self._error("expected prefix name")
                prefix = str(token.value)[:-1]
                iri = self._next()
                if iri.type != "iri":
                    raise self._error("expected IRI in PREFIX")
                self.namespaces.bind(prefix, str(iri.value))
            else:
                iri = self._next()
                if iri.type != "iri":
                    raise self._error("expected IRI in BASE")

    # -- query forms --------------------------------------------------------------

    def _select(self) -> ast.SelectQuery:
        self._expect_word("SELECT")
        distinct = self._accept_word("DISTINCT")
        self._accept_word("REDUCED")
        variables: list[ast.Variable] | None
        if self._peek().is_op("*"):
            self._next()
            variables = None
        else:
            variables = []
            while self._peek().type == "var":
                variables.append(ast.Variable(str(self._next().value)))
            if not variables:
                raise self._error("expected variables or '*' after SELECT")
        self._accept_word("WHERE")
        where = self._group()
        order_by: list[tuple[ast.Expr, bool]] = []
        limit = offset = None
        if self._accept_word("ORDER"):
            self._expect_word("BY")
            order_by = self._order_conditions()
        if self._accept_word("LIMIT"):
            limit = self._integer()
        if self._accept_word("OFFSET"):
            offset = self._integer()
        return ast.SelectQuery(variables, where, distinct, order_by,
                               limit, offset)

    def _ask(self) -> ast.AskQuery:
        self._expect_word("ASK")
        self._accept_word("WHERE")
        return ast.AskQuery(self._group())

    def _construct(self) -> ast.ConstructQuery:
        self._expect_word("CONSTRUCT")
        template_group = self._group(paths_allowed=False)
        template = [element for element in template_group.elements
                    if isinstance(element, ast.TriplePattern)]
        if len(template) != len(template_group.elements):
            raise self._error(
                "CONSTRUCT template may only contain triple patterns")
        self._expect_word("WHERE")
        where = self._group()
        return ast.ConstructQuery(template, where)

    def _integer(self) -> int:
        token = self._next()
        if token.type != "number" or not isinstance(token.value, int):
            raise self._error("expected an integer")
        return token.value

    def _order_conditions(self) -> list[tuple[ast.Expr, bool]]:
        conditions: list[tuple[ast.Expr, bool]] = []
        while True:
            token = self._peek()
            if token.is_word("ASC", "DESC"):
                descending = str(self._next().value).upper() == "DESC"
                self._expect_punct("(")
                expr = self._expression()
                self._expect_punct(")")
                conditions.append((expr, descending))
            elif token.type == "var":
                self._next()
                conditions.append(
                    (ast.VarExpr(ast.Variable(str(token.value))), False))
            else:
                if not conditions:
                    raise self._error("expected ORDER BY condition")
                return conditions

    # -- groups ------------------------------------------------------------------------

    def _group(self, paths_allowed: bool = True) -> ast.GroupPattern:
        self._expect_punct("{")
        group = ast.GroupPattern()
        while not self._peek().is_punct("}"):
            token = self._peek()
            if token.is_punct("{"):
                inner = self._group(paths_allowed)
                element: ast.PatternElement = inner
                if self._peek().is_word("UNION"):
                    branches = [inner]
                    while self._accept_word("UNION"):
                        branches.append(self._group(paths_allowed))
                    element = ast.UnionPattern(branches)
                group.elements.append(element)
            elif token.is_word("FILTER"):
                self._next()
                self._expect_punct("(")
                group.elements.append(ast.Filter(self._expression()))
                self._expect_punct(")")
            elif token.is_word("OPTIONAL"):
                self._next()
                group.elements.append(
                    ast.OptionalPattern(self._group(paths_allowed)))
            elif token.is_word("BIND"):
                self._next()
                self._expect_punct("(")
                expr = self._expression()
                self._expect_word("AS")
                var_token = self._next()
                if var_token.type != "var":
                    raise self._error("expected variable after AS")
                self._expect_punct(")")
                group.elements.append(
                    ast.Bind(expr, ast.Variable(str(var_token.value))))
            else:
                group.elements.extend(self._triples_block(paths_allowed))
            self._accept_punct(".")
        self._expect_punct("}")
        return group

    def _triples_block(self, paths_allowed: bool) -> list[ast.TriplePattern]:
        subject = self._term(role="subject")
        patterns: list[ast.TriplePattern] = []
        while True:
            predicate = (self._path() if paths_allowed
                         else self._plain_predicate())
            while True:
                obj = self._term(role="object")
                patterns.append(ast.TriplePattern(subject, predicate, obj))
                if not self._accept_punct(","):
                    break
            if self._accept_punct(";"):
                if self._peek().is_punct(".", "}"):
                    return patterns
                continue
            return patterns

    # -- terms -----------------------------------------------------------------------------

    def _term(self, role: str) -> ast.PatternTerm:
        token = self._next()
        if token.type == "var":
            return ast.Variable(str(token.value))
        if token.type == "iri":
            return IRI(str(token.value))
        if token.type == "pname":
            return self.namespaces.expand(str(token.value))
        if token.type == "bnode":
            name = str(token.value)
            if name not in self._bnodes:
                self._bnodes[name] = BNode(name)
            return self._bnodes[name]
        if token.type == "number":
            return Literal(token.value)
        if token.type == "string":
            return self._string_literal(str(token.value))
        if token.is_word("TRUE", "FALSE"):
            return Literal(str(token.value).lower() == "true")
        if token.is_word("A") and role == "subject":
            raise self._error("'a' is only valid as a predicate")
        raise self._error(f"expected {role}, found {token.describe()}")

    def _string_literal(self, text: str) -> Literal:
        token = self._peek()
        if token.is_op("^^"):
            self._next()
            dtype_token = self._next()
            if dtype_token.type == "iri":
                return _typed_literal(text, str(dtype_token.value))
            if dtype_token.type == "pname":
                return _typed_literal(
                    text, self.namespaces.expand(str(dtype_token.value)).value)
            raise self._error("expected datatype IRI after ^^")
        # Language tags arrive as '@' — our lexer has no '@'; accept 'word'
        # forms like "chat"@en only when the tokenizer produced an op '@'.
        return Literal(text)

    def _plain_predicate(self) -> ast.PatternTerm:
        token = self._next()
        if token.type == "var":
            return ast.Variable(str(token.value))
        if token.type == "iri":
            return IRI(str(token.value))
        if token.type == "pname":
            return self.namespaces.expand(str(token.value))
        if token.is_word("A"):
            return RDF_TYPE
        raise self._error(f"expected predicate, found {token.describe()}")

    # -- property paths --------------------------------------------------------------------

    def _path(self) -> ast.PatternTerm | ast.Path:
        token = self._peek()
        if token.type == "var":
            self._next()
            return ast.Variable(str(token.value))
        path = self._path_alternative()
        return path

    def _path_alternative(self):
        parts = [self._path_sequence()]
        while self._peek().is_op("|"):
            self._next()
            parts.append(self._path_sequence())
        if len(parts) == 1:
            return parts[0]
        return ast.AlternativePath(tuple(parts))

    def _path_sequence(self):
        parts = [self._path_elt()]
        while self._peek().is_op("/"):
            self._next()
            parts.append(self._path_elt())
        if len(parts) == 1:
            return parts[0]
        return ast.SequencePath(tuple(parts))

    def _path_elt(self):
        inverse = False
        if self._peek().is_op("^"):
            self._next()
            inverse = True
        primary = self._path_primary()
        token = self._peek()
        if token.is_op("*"):
            self._next()
            primary = ast.ZeroOrMorePath(primary)
        elif token.is_op("+"):
            self._next()
            primary = ast.OneOrMorePath(primary)
        elif token.is_op("?"):
            self._next()
            primary = ast.ZeroOrOnePath(primary)
        if inverse:
            primary = ast.InversePath(primary)
        return primary

    def _path_primary(self):
        token = self._next()
        if token.type == "iri":
            return IRI(str(token.value))
        if token.type == "pname":
            return self.namespaces.expand(str(token.value))
        if token.is_word("A"):
            return RDF_TYPE
        if token.is_punct("("):
            inner = self._path_alternative()
            self._expect_punct(")")
            return inner
        raise self._error(
            f"expected a property path, found {token.describe()}")

    # -- expressions --------------------------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._or_expression()

    def _or_expression(self) -> ast.Expr:
        left = self._and_expression()
        while self._peek().is_op("||"):
            self._next()
            left = ast.BinaryExpr("||", left, self._and_expression())
        return left

    def _and_expression(self) -> ast.Expr:
        left = self._relational()
        while self._peek().is_op("&&"):
            self._next()
            left = ast.BinaryExpr("&&", left, self._relational())
        return left

    def _relational(self) -> ast.Expr:
        left = self._additive()
        token = self._peek()
        if token.is_op("=", "!=", "<", "<=", ">", ">="):
            op = str(self._next().value)
            return ast.BinaryExpr(op, left, self._additive())
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while self._peek().is_op("+", "-"):
            op = str(self._next().value)
            left = ast.BinaryExpr(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while self._peek().is_op("*", "/"):
            op = str(self._next().value)
            left = ast.BinaryExpr(op, left, self._unary())
        return left

    def _unary(self) -> ast.Expr:
        token = self._peek()
        if token.is_op("!"):
            self._next()
            return ast.UnaryExpr("!", self._unary())
        if token.is_op("-"):
            self._next()
            return ast.UnaryExpr("-", self._unary())
        if token.is_op("+"):
            self._next()
            return ast.UnaryExpr("+", self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._next()
        if token.is_punct("("):
            expr = self._expression()
            self._expect_punct(")")
            return expr
        if token.type == "var":
            return ast.VarExpr(ast.Variable(str(token.value)))
        if token.type == "number":
            return ast.TermExpr(Literal(token.value))
        if token.type == "string":
            return ast.TermExpr(self._string_literal(str(token.value)))
        if token.type == "iri":
            return ast.TermExpr(IRI(str(token.value)))
        if token.type == "pname":
            return ast.TermExpr(self.namespaces.expand(str(token.value)))
        if token.is_word("TRUE", "FALSE"):
            return ast.TermExpr(Literal(str(token.value).lower() == "true"))
        if token.type == "word" and str(token.value).upper() in _BUILTINS:
            name = str(token.value).upper()
            self._expect_punct("(")
            args: list[ast.Expr] = []
            if not self._peek().is_punct(")"):
                args.append(self._expression())
                while self._accept_punct(","):
                    args.append(self._expression())
            self._expect_punct(")")
            return ast.CallExpr(name, args)
        raise self._error(
            f"unexpected {token.describe()} in expression")


def parse_sparql(text: str,
                 namespaces: NamespaceManager | None = None) -> ast.Query:
    """Parse a SPARQL query string."""
    return SparqlParser(text, namespaces).parse()
