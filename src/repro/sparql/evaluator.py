"""SPARQL query evaluation over a TripleStore.

Solutions are dicts mapping :class:`~repro.sparql.ast.Variable` to RDF
terms.  Basic graph patterns are joined pattern-by-pattern, greedily
reordering each run of triple patterns so the most-bound pattern runs
first (index-friendly).  OPTIONAL implements left-join semantics, UNION
concatenates branch solutions, FILTERs drop solutions whose expression
is not (effectively) true.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from ..rdf.store import TripleStore
from ..rdf.terms import Literal, Term, term_from_python, term_sort_key
from . import ast
from .errors import FilterError, SparqlEvalError
from .filters import evaluate, evaluate_boolean
from .parser import parse_sparql
from .paths import eval_path

Solution = dict[ast.Variable, Term]


class SparqlResults:
    """SELECT results: ordered variables plus a list of bindings."""

    def __init__(self, variables: list[ast.Variable],
                 solutions: list[Solution]) -> None:
        self.variables = variables
        self.solutions = solutions

    def __len__(self) -> int:
        return len(self.solutions)

    def __iter__(self) -> Iterator[Solution]:
        return iter(self.solutions)

    def var_names(self) -> list[str]:
        return [variable.name for variable in self.variables]

    def tuples(self) -> list[tuple]:
        """Rows of terms in variable order (None for unbound)."""
        return [tuple(solution.get(variable) for variable in self.variables)
                for solution in self.solutions]

    def values(self, name: str) -> list[Term | None]:
        variable = ast.Variable(name)
        return [solution.get(variable) for solution in self.solutions]

    def python_tuples(self) -> list[tuple]:
        """Rows with literals unwrapped to Python values, IRIs as strings."""
        def plain(term: Term | None) -> Any:
            if term is None:
                return None
            if isinstance(term, Literal):
                return term.value
            return str(term)
        return [tuple(plain(value) for value in row)
                for row in self.tuples()]


def _substitute(position, solution: Solution):
    if isinstance(position, ast.Variable):
        return solution.get(position)
    return position


def _pattern_boundness(pattern: ast.TriplePattern,
                       bound: set[ast.Variable]) -> int:
    score = 0
    for position in (pattern.subject, pattern.predicate, pattern.object):
        if not isinstance(position, ast.Variable) or position in bound:
            score += 1
    return score


class Evaluator:
    def __init__(self, store: TripleStore) -> None:
        self.store = store

    # -- group evaluation -------------------------------------------------------

    def eval_group(self, group: ast.GroupPattern,
                   seeds: Iterable[Solution]) -> list[Solution]:
        solutions = list(seeds)
        elements = list(group.elements)
        index = 0
        while index < len(elements):
            element = elements[index]
            if isinstance(element, ast.TriplePattern):
                # Collect the whole run of triple patterns and join them
                # in a selectivity-friendly order.
                run = []
                while index < len(elements) and isinstance(
                        elements[index], ast.TriplePattern):
                    run.append(elements[index])
                    index += 1
                solutions = self._eval_bgp(run, solutions)
                continue
            if isinstance(element, ast.Filter):
                solutions = [solution for solution in solutions
                             if evaluate_boolean(element.expression,
                                                 solution)]
            elif isinstance(element, ast.Bind):
                solutions = self._eval_bind(element, solutions)
            elif isinstance(element, ast.OptionalPattern):
                solutions = self._eval_optional(element.group, solutions)
            elif isinstance(element, ast.UnionPattern):
                merged: list[Solution] = []
                for branch in element.branches:
                    merged.extend(self.eval_group(branch, solutions))
                solutions = merged
            elif isinstance(element, ast.GroupPattern):
                solutions = self.eval_group(element, solutions)
            else:  # pragma: no cover - parser prevents this
                raise SparqlEvalError(
                    f"unknown pattern element {type(element).__name__}")
            index += 1
        return solutions

    def _eval_bgp(self, patterns: list[ast.TriplePattern],
                  solutions: list[Solution]) -> list[Solution]:
        remaining = list(patterns)
        bound: set[ast.Variable] = set()
        for solution in solutions[:1]:
            bound.update(solution.keys())
        while remaining:
            remaining.sort(key=lambda pattern: -_pattern_boundness(
                pattern, bound))
            pattern = remaining.pop(0)
            solutions = self._extend(pattern, solutions)
            bound.update(pattern.variables())
            if not solutions:
                return []
        return solutions

    def _extend(self, pattern: ast.TriplePattern,
                solutions: list[Solution]) -> list[Solution]:
        extended: list[Solution] = []
        for solution in solutions:
            subject = _substitute(pattern.subject, solution)
            predicate = pattern.predicate
            obj = _substitute(pattern.object, solution)
            if isinstance(predicate, ast.Variable):
                bound_predicate = solution.get(predicate)
                for triple in self.store.triples(
                        subject, bound_predicate, obj):
                    candidate = dict(solution)
                    if self._unify(pattern, triple.subject,
                                   triple.predicate, triple.object,
                                   candidate):
                        extended.append(candidate)
            elif isinstance(predicate, (ast.Path,)):
                for s_term, o_term in eval_path(
                        self.store, subject, predicate, obj):
                    candidate = dict(solution)
                    if self._unify(pattern, s_term, None, o_term, candidate):
                        extended.append(candidate)
            else:
                for triple in self.store.triples(subject, predicate, obj):
                    candidate = dict(solution)
                    if self._unify(pattern, triple.subject,
                                   triple.predicate, triple.object,
                                   candidate):
                        extended.append(candidate)
        return extended

    @staticmethod
    def _unify(pattern: ast.TriplePattern, subject: Term,
               predicate: Term | None, obj: Term,
               solution: Solution) -> bool:
        pairs = [(pattern.subject, subject), (pattern.object, obj)]
        if predicate is not None:
            pairs.append((pattern.predicate, predicate))
        for position, value in pairs:
            if isinstance(position, ast.Variable):
                existing = solution.get(position)
                if existing is None:
                    solution[position] = value
                elif existing != value:
                    return False
        return True

    def _eval_bind(self, bind: ast.Bind,
                   solutions: list[Solution]) -> list[Solution]:
        results: list[Solution] = []
        for solution in solutions:
            if bind.variable in solution:
                raise SparqlEvalError(
                    f"BIND would rebind {bind.variable.n3()}")
            candidate = dict(solution)
            try:
                value = evaluate(bind.expression, solution)
                candidate[bind.variable] = (
                    value if isinstance(value, Term)
                    or hasattr(value, "n3")
                    else term_from_python(value))
            except FilterError:
                pass  # BIND errors leave the variable unbound.
            results.append(candidate)
        return results

    def _eval_optional(self, group: ast.GroupPattern,
                       solutions: list[Solution]) -> list[Solution]:
        results: list[Solution] = []
        for solution in solutions:
            matches = self.eval_group(group, [solution])
            if matches:
                results.extend(matches)
            else:
                results.append(solution)
        return results

    # -- query forms ------------------------------------------------------------------

    def select(self, query: ast.SelectQuery) -> SparqlResults:
        solutions = self.eval_group(query.where, [{}])
        if query.variables is None:
            variables = sorted(ast.group_variables(query.where),
                               key=lambda variable: variable.name)
        else:
            variables = query.variables
        projected = [
            {variable: solution[variable]
             for variable in variables if variable in solution}
            for solution in solutions
        ]
        if query.order_by:
            def order_key(solution: Solution):
                keys = []
                for expr, descending in query.order_by:
                    try:
                        value = evaluate(expr, solution)
                    except FilterError:
                        value = None
                    if value is not None and not isinstance(
                            value, Term) and not hasattr(value, "n3"):
                        value = term_from_python(value)
                    key = term_sort_key(value)
                    keys.append(_Reversed(key) if descending else key)
                return tuple(keys)
            # Order over full solutions so ORDER BY can use any variable.
            paired = sorted(zip(solutions, projected),
                            key=lambda pair: order_key(pair[0]))
            projected = [projection for _solution, projection in paired]
        if query.distinct:
            seen: set[tuple] = set()
            deduped: list[Solution] = []
            for solution in projected:
                key = tuple(sorted(
                    (variable.name, repr(value))
                    for variable, value in solution.items()))
                if key not in seen:
                    seen.add(key)
                    deduped.append(solution)
            projected = deduped
        start = query.offset or 0
        end = (start + query.limit) if query.limit is not None else None
        projected = projected[start:end]
        return SparqlResults(variables, projected)

    def ask(self, query: ast.AskQuery) -> bool:
        return bool(self.eval_group(query.where, [{}]))

    def construct(self, query: ast.ConstructQuery) -> TripleStore:
        result = TripleStore()
        for solution in self.eval_group(query.where, [{}]):
            for pattern in query.template:
                subject = _substitute(pattern.subject, solution)
                predicate = _substitute(pattern.predicate, solution)
                obj = _substitute(pattern.object, solution)
                if subject is None or predicate is None or obj is None:
                    continue  # incomplete instantiation is skipped
                result.add(subject, predicate, obj)
        return result


class _Reversed:
    """Inverts comparison for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.key == other.key


class SparqlEngine:
    """Convenience front end binding a store to the parser + evaluator."""

    def __init__(self, store: TripleStore) -> None:
        self.store = store

    def query(self, text: str | ast.Query):
        """Run a query; returns SparqlResults, bool (ASK) or TripleStore
        (CONSTRUCT) depending on the query form."""
        parsed = parse_sparql(text) if isinstance(text, str) else text
        evaluator = Evaluator(self.store)
        if isinstance(parsed, ast.SelectQuery):
            return evaluator.select(parsed)
        if isinstance(parsed, ast.AskQuery):
            return evaluator.ask(parsed)
        if isinstance(parsed, ast.ConstructQuery):
            return evaluator.construct(parsed)
        raise SparqlEvalError(
            f"unsupported query form {type(parsed).__name__}")
