"""SPARQL query evaluation over a TripleStore.

Two engines share one semantics:

* :class:`Evaluator` — the production engine.  Solutions flow between
  operators as **id-encoded batches** (tuples of dictionary ids, one
  column per variable), basic graph patterns are joined set-at-a-time
  with hash joins on the shared variables, and the join order comes
  from :mod:`repro.sparql.planner`'s selectivity estimates over the
  store's O(1) statistics.  ``Term`` objects materialize only at the
  :class:`SparqlResults` boundary (or inside FILTER/BIND expressions),
  mirroring the late-materialization discipline of column stores — and
  of the paper's personal-KB evaluation loop, where every enrichment
  pays this layer's latency.
* :class:`NaiveEvaluator` — the seed's solution-at-a-time interpreter,
  kept as the pinned baseline for the equivalence property suite and
  the E12 benchmark gate.

OPTIONAL implements left-join semantics, UNION concatenates branch
solutions, FILTERs drop solutions whose expression is not (effectively)
true — in both engines, at the same positions in the group.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator

from ..rdf.store import TripleStore
from ..rdf.terms import Literal, Term, is_term, term_from_python, term_sort_key
from . import ast
from .errors import FilterError, SparqlEvalError
from .filters import evaluate, evaluate_boolean
from .parser import parse_sparql
from .paths import eval_path
from .planner import order_bgp

Solution = dict[ast.Variable, Term]


class SparqlResults:
    """SELECT results: ordered variables plus a list of bindings."""

    def __init__(self, variables: list[ast.Variable],
                 solutions: list[Solution]) -> None:
        self.variables = variables
        self.solutions = solutions

    def __len__(self) -> int:
        return len(self.solutions)

    def __iter__(self) -> Iterator[Solution]:
        return iter(self.solutions)

    def var_names(self) -> list[str]:
        return [variable.name for variable in self.variables]

    def tuples(self) -> list[tuple]:
        """Rows of terms in variable order (None for unbound)."""
        return [tuple(solution.get(variable) for variable in self.variables)
                for solution in self.solutions]

    def values(self, name: str) -> list[Term | None]:
        variable = ast.Variable(name)
        return [solution.get(variable) for solution in self.solutions]

    def python_tuples(self) -> list[tuple]:
        """Rows with literals unwrapped to Python values, IRIs as strings."""
        def plain(term: Term | None) -> Any:
            if term is None:
                return None
            if isinstance(term, Literal):
                return term.value
            return str(term)
        return [tuple(plain(value) for value in row)
                for row in self.tuples()]


def _substitute(position, solution: Solution):
    if isinstance(position, ast.Variable):
        return solution.get(position)
    return position


def _initial_bound(solutions: Iterable[Solution]) -> set[ast.Variable]:
    """Variables bound anywhere in the incoming solutions.

    Pattern ordering must see the whole boundness picture: after an
    OPTIONAL the solutions are heterogeneous, and seeding from the
    first solution alone (the seed behaviour) mis-orders the join.
    """
    bound: set[ast.Variable] = set()
    for solution in solutions:
        bound.update(solution.keys())
    return bound


class _RowTag:
    """Hidden provenance column for OPTIONAL left-joins.

    Not an :class:`ast.Variable`, so patterns can never reference it,
    expression evaluation skips it and it is stripped before results
    decode.  Values in this column are row ordinals, not term ids.
    """

    __slots__ = ()


class _Batch:
    """Id-encoded solution set: a column per variable, a tuple per row.

    ``None`` marks an unbound variable in a row (heterogeneous
    boundness after OPTIONAL).  All other cells are dictionary ids —
    ints — so hash-join keys and dedup run on integer hashing.
    """

    __slots__ = ("vars", "index", "rows")

    def __init__(self, vars_: list, rows: list[tuple]) -> None:
        self.vars = vars_
        self.index = {var: i for i, var in enumerate(vars_)}
        self.rows = rows


class Evaluator:
    """Set-at-a-time SPARQL evaluation (see module docstring)."""

    def __init__(self, store: TripleStore) -> None:
        self.store = store
        self.dictionary = store.dictionary
        self.stats = store.stats

    # -- public compatibility surface ----------------------------------------

    def eval_group(self, group: ast.GroupPattern,
                   seeds: Iterable[Solution]) -> list[Solution]:
        """Evaluate a group over seed solutions (dict-level API)."""
        return self._decode(self._eval_group(group, self._encode(seeds)))

    # -- encode / decode -----------------------------------------------------

    def _encode(self, seeds: Iterable[Solution]) -> _Batch:
        solutions = list(seeds)
        vars_: list = []
        index: dict = {}
        for solution in solutions:
            for variable in solution:
                if variable not in index:
                    index[variable] = len(vars_)
                    vars_.append(variable)
        intern = self.dictionary.intern
        rows = [tuple(intern(solution[variable])
                      if variable in solution else None
                      for variable in vars_)
                for solution in solutions]
        return _Batch(vars_, rows)

    def _decode(self, batch: _Batch) -> list[Solution]:
        terms = self.dictionary.terms
        columns = [(i, var) for i, var in enumerate(batch.vars)
                   if isinstance(var, ast.Variable)]
        out: list[Solution] = []
        for row in batch.rows:
            solution: Solution = {}
            for i, var in columns:
                value = row[i]
                if value is not None:
                    solution[var] = terms[value]
            out.append(solution)
        return out

    def _expr_columns(self, expression: ast.Expr,
                      batch: _Batch) -> list[tuple[int, ast.Variable]]:
        """(column, variable) pairs the expression can actually read —
        FILTER/BIND rows materialize only these, not the whole row."""
        referenced: set[ast.Variable] = set()

        def visit(expr) -> None:
            if isinstance(expr, ast.VarExpr):
                referenced.add(expr.variable)
            elif isinstance(expr, ast.UnaryExpr):
                visit(expr.operand)
            elif isinstance(expr, ast.BinaryExpr):
                visit(expr.left)
                visit(expr.right)
            elif isinstance(expr, ast.CallExpr):
                for arg in expr.args:
                    visit(arg)

        visit(expression)
        return [(batch.index[var], var) for var in referenced
                if var in batch.index]

    # -- group evaluation -------------------------------------------------------

    def _eval_group(self, group: ast.GroupPattern, batch: _Batch) -> _Batch:
        elements = list(group.elements)
        index = 0
        while index < len(elements):
            element = elements[index]
            if isinstance(element, ast.TriplePattern):
                run = []
                while index < len(elements) and isinstance(
                        elements[index], ast.TriplePattern):
                    run.append(elements[index])
                    index += 1
                batch = self._eval_bgp(run, batch)
                continue
            if isinstance(element, ast.Filter):
                batch = self._filter(element, batch)
            elif isinstance(element, ast.Bind):
                batch = self._bind(element, batch)
            elif isinstance(element, ast.OptionalPattern):
                batch = self._optional(element.group, batch)
            elif isinstance(element, ast.UnionPattern):
                batch = self._union(element, batch)
            elif isinstance(element, ast.GroupPattern):
                batch = self._eval_group(element, batch)
            else:  # pragma: no cover - parser prevents this
                raise SparqlEvalError(
                    f"unknown pattern element {type(element).__name__}")
            index += 1
        return batch

    # -- BGP: planned, set-at-a-time joins -----------------------------------

    def _eval_bgp(self, patterns: list[ast.TriplePattern],
                  batch: _Batch) -> _Batch:
        if not batch.rows:
            return batch
        # Boundness for ordering comes from the whole batch state, not
        # the first row (see _initial_bound / planner.order_bgp).
        bound_cols = [False] * len(batch.vars)
        for row in batch.rows:
            for i, value in enumerate(row):
                if value is not None:
                    bound_cols[i] = True
        bound = {var for i, var in enumerate(batch.vars)
                 if bound_cols[i] and isinstance(var, ast.Variable)}
        # Hold the read side across planning *and* joining: the
        # statistics the planner prices (and, on an "spo"-only store,
        # scans) must not race a writer; the joins' own acquisitions
        # below piggyback reentrantly.
        with self.store.rwlock.read_locked():
            for step in order_bgp(patterns, bound, self.stats,
                                  self.dictionary):
                batch = self._join_pattern(batch, step.pattern)
                if not batch.rows:
                    return batch
        return batch

    def _join_pattern(self, batch: _Batch,
                      pattern: ast.TriplePattern) -> _Batch:
        predicate = pattern.predicate
        if isinstance(predicate, ast.Path):
            return self._join_path(batch, pattern)

        positions = (pattern.subject, predicate, pattern.object)
        const: list[int | None] = [None, None, None]
        var_positions: dict[ast.Variable, list[int]] = {}
        pvars: list[ast.Variable] = []
        for i, position in enumerate(positions):
            if isinstance(position, ast.Variable):
                at = var_positions.setdefault(position, [])
                if not at:
                    pvars.append(position)
                at.append(i)
            else:
                encoded = self.dictionary.lookup(position)
                if encoded is None:
                    # A constant the store never interned: no matches.
                    return _Batch(
                        list(batch.vars)
                        + [v for v in pattern.variables()
                           if v not in batch.index], [])
                const[i] = encoded

        new_vars = [var for var in pvars if var not in batch.index]
        out_vars = list(batch.vars) + new_vars
        out_index = {var: i for i, var in enumerate(out_vars)}
        # ``?x p ?x``-style duplicate positions must agree per triple.
        dup_pairs = [(at[0], extra) for at in var_positions.values()
                     for extra in at[1:]]
        shared = [var for var in pvars if var in batch.index]
        shared_idx = [batch.index[var] for var in shared]

        # One pass both groups (rows with every shared var bound — the
        # overwhelmingly common case) and collects heterogeneous rows
        # (unbound shared vars, post-OPTIONAL) for the general path.
        buckets: dict[tuple, list[tuple]] = {}
        loose: list[tuple] = []
        if shared:
            for row in batch.rows:
                key = tuple(row[i] for i in shared_idx)
                if None in key:
                    loose.append(row)
                else:
                    buckets.setdefault(key, []).append(row)
        else:
            buckets[()] = batch.rows

        new_rows: list[tuple] = []
        with self.store.rwlock.read_locked():
            if buckets:
                self._join_group(buckets, shared, [], const, var_positions,
                                 dup_pairs, new_vars, out_index, new_rows)
            if loose:
                by_mask: dict[tuple, list[tuple]] = {}
                for row in loose:
                    mask = tuple(row[i] is not None for i in shared_idx)
                    by_mask.setdefault(mask, []).append(row)
                for mask, rows in by_mask.items():
                    bvars = [v for v, flag in zip(shared, mask) if flag]
                    bidx = [i for i, flag in zip(shared_idx, mask) if flag]
                    fill = [v for v, flag in zip(shared, mask) if not flag]
                    group_buckets: dict[tuple, list[tuple]] = {}
                    for row in rows:
                        group_buckets.setdefault(
                            tuple(row[i] for i in bidx), []).append(row)
                    self._join_group(group_buckets, bvars, fill, const,
                                     var_positions, dup_pairs, new_vars,
                                     out_index, new_rows)
        return _Batch(out_vars, new_rows)

    def _join_group(self, buckets: dict[tuple, list[tuple]],
                    bvars: list[ast.Variable], fill: list[ast.Variable],
                    const: list[int | None],
                    var_positions: dict[ast.Variable, list[int]],
                    dup_pairs: list[tuple[int, int]],
                    new_vars: list[ast.Variable],
                    out_index: dict, new_rows: list[tuple]) -> None:
        """Join one homogeneous-boundness group of solution rows.

        *buckets* hash the rows on their (bound) shared-variable ids.
        Chooses between one index scan probed against the hash (when
        the pattern's constants are selective) and an index nested-loop
        over the *distinct* join keys (when the batch is small), using
        the same statistics the pattern ordering used.  Caller holds
        the store's read lock.
        """
        key_pos = [var_positions[var][0] for var in bvars]
        append_pos = [var_positions[var][0] for var in new_vars]
        fill_pairs = [(out_index[var], var_positions[var][0])
                      for var in fill]
        match_ids = self.store._match_ids
        pad = (None,) * len(new_vars)
        probe = bvars and len(buckets) < self.stats.count_ids(*const)

        def consume(candidates, bucket=None) -> None:
            for triple in candidates:
                skip = False
                for left, right in dup_pairs:
                    if triple[left] != triple[right]:
                        skip = True
                        break
                if skip:
                    continue
                rows = bucket if bucket is not None else buckets.get(
                    tuple(triple[p] for p in key_pos))
                if not rows:
                    continue
                if fill_pairs:
                    tail = tuple(triple[p] for p in append_pos)
                    for row in rows:
                        new = list(row + pad)
                        for out_i, p in fill_pairs:
                            new[out_i] = triple[p]
                        if tail:
                            new[-len(tail):] = tail
                        new_rows.append(tuple(new))
                elif append_pos:
                    tail = tuple(triple[p] for p in append_pos)
                    for row in rows:
                        new_rows.append(row + tail)
                else:
                    # Pure semijoin: every pattern variable was already
                    # bound, and (constants + key) pin a unique triple.
                    new_rows.extend(rows)

        if probe:
            # One index probe per distinct join key, however many
            # solution rows share it.
            for key, rows in buckets.items():
                spec = list(const)
                for var, value in zip(bvars, key):
                    for p in var_positions[var]:
                        spec[p] = value
                consume(match_ids(*spec), bucket=rows)
        else:
            consume(match_ids(*const))

    def _join_path(self, batch: _Batch,
                   pattern: ast.TriplePattern) -> _Batch:
        subject, path, obj = (pattern.subject, pattern.predicate,
                              pattern.object)
        s_var = subject if isinstance(subject, ast.Variable) else None
        o_var = obj if isinstance(obj, ast.Variable) else None
        out_vars = list(batch.vars) + [
            var for var in (s_var, o_var)
            if var is not None and var not in batch.index]
        out_index = {var: i for i, var in enumerate(out_vars)}
        pad = len(out_vars) - len(batch.vars)
        padding = (None,) * pad
        terms = self.dictionary.terms
        intern = self.dictionary.intern
        s_col = batch.index.get(s_var) if s_var is not None else None
        o_col = batch.index.get(o_var) if o_var is not None else None
        # eval_path is memoized per distinct endpoint binding — the
        # set-at-a-time analogue of the per-solution path probes.
        memo: dict[tuple, list[tuple[int, int]]] = {}
        new_rows: list[tuple] = []
        for row in batch.rows:
            s_id = row[s_col] if s_col is not None else None
            o_id = row[o_col] if o_col is not None else None
            key = (s_id, o_id)
            pairs = memo.get(key)
            if pairs is None:
                s_arg = (subject if s_var is None
                         else (terms[s_id] if s_id is not None else None))
                o_arg = (obj if o_var is None
                         else (terms[o_id] if o_id is not None else None))
                pairs = [(intern(s_term), intern(o_term))
                         for s_term, o_term in eval_path(
                             self.store, s_arg, path, o_arg)]
                memo[key] = pairs
            for pair_s, pair_o in pairs:
                new = list(row + padding)
                ok = True
                for var, value in ((s_var, pair_s), (o_var, pair_o)):
                    if var is None:
                        continue
                    out_i = out_index[var]
                    current = new[out_i]
                    if current is None:
                        new[out_i] = value
                    elif current != value:
                        ok = False
                        break
                if ok:
                    new_rows.append(tuple(new))
        return _Batch(out_vars, new_rows)

    # -- non-BGP operators ---------------------------------------------------

    def _filter(self, element: ast.Filter, batch: _Batch) -> _Batch:
        expression = element.expression
        columns = self._expr_columns(expression, batch)
        terms = self.dictionary.terms
        kept = []
        for row in batch.rows:
            solution: Solution = {}
            for i, var in columns:
                value = row[i]
                if value is not None:
                    solution[var] = terms[value]
            if evaluate_boolean(expression, solution):
                kept.append(row)
        return _Batch(batch.vars, kept)

    def _bind(self, bind: ast.Bind, batch: _Batch) -> _Batch:
        variable = bind.variable
        existing = batch.index.get(variable)
        if existing is None:
            out_vars = list(batch.vars) + [variable]
            column = len(batch.vars)
        else:
            out_vars = list(batch.vars)
            column = existing
        intern = self.dictionary.intern
        columns = self._expr_columns(bind.expression, batch)
        terms = self.dictionary.terms
        new_rows: list[tuple] = []
        for row in batch.rows:
            if existing is not None and row[existing] is not None:
                raise SparqlEvalError(
                    f"BIND would rebind {variable.n3()}")
            value_id = None
            try:
                solution: Solution = {}
                for i, var in columns:
                    value = row[i]
                    if value is not None:
                        solution[var] = terms[value]
                value = evaluate(bind.expression, solution)
                if not (is_term(value) or hasattr(value, "n3")):
                    value = term_from_python(value)
                value_id = intern(value)
            except FilterError:
                pass  # BIND errors leave the variable unbound.
            if existing is None:
                new_rows.append(row + (value_id,))
            else:
                new = list(row)
                new[column] = value_id
                new_rows.append(tuple(new))
        return _Batch(out_vars, new_rows)

    def _optional(self, group: ast.GroupPattern, batch: _Batch) -> _Batch:
        tag = _RowTag()
        tagged = _Batch(list(batch.vars) + [tag],
                        [row + (ordinal,)
                         for ordinal, row in enumerate(batch.rows)])
        inner = self._eval_group(group, tagged)
        tag_col = inner.index[tag]
        matched = {row[tag_col] for row in inner.rows}
        keep = [i for i, var in enumerate(inner.vars) if var is not tag]
        out_vars = [inner.vars[i] for i in keep]
        new_rows = [tuple(row[i] for i in keep) for row in inner.rows]
        pad = (None,) * (len(out_vars) - len(batch.vars))
        for ordinal, row in enumerate(batch.rows):
            if ordinal not in matched:
                new_rows.append(row + pad)
        return _Batch(out_vars, new_rows)

    def _union(self, element: ast.UnionPattern, batch: _Batch) -> _Batch:
        out_vars = list(batch.vars)
        out_index = dict(batch.index)
        branch_batches: list[_Batch] = []
        for branch in element.branches:
            result = self._eval_group(branch, batch)
            branch_batches.append(result)
            for var in result.vars:
                if var not in out_index:
                    out_index[var] = len(out_vars)
                    out_vars.append(var)
        new_rows: list[tuple] = []
        for result in branch_batches:
            mapping = [result.index.get(var) for var in out_vars]
            for row in result.rows:
                new_rows.append(tuple(
                    row[source] if source is not None else None
                    for source in mapping))
        return _Batch(out_vars, new_rows)

    # -- query forms ------------------------------------------------------------------

    def _where_batch(self, where: ast.GroupPattern) -> _Batch:
        return self._eval_group(where, _Batch([], [()]))

    def select(self, query: ast.SelectQuery) -> SparqlResults:
        batch = self._where_batch(query.where)
        variables = self._select_variables(query)
        if query.order_by:
            # ORDER BY may reference unprojected variables: decode the
            # full solutions once and sort over them.
            solutions = self._decode(batch)
            projected = _order(solutions, _project(solutions, variables),
                               query.order_by)
        else:
            # Fused decode + projection: one dict per row, projected
            # columns only, terms materialized at the last moment.
            terms = self.dictionary.terms
            columns = [(batch.index[var], var) for var in variables
                       if var in batch.index]
            projected = []
            for row in batch.rows:
                solution: Solution = {}
                for i, var in columns:
                    value = row[i]
                    if value is not None:
                        solution[var] = terms[value]
                projected.append(solution)
        if query.distinct:
            projected = _distinct(projected)
        start = query.offset or 0
        end = (start + query.limit) if query.limit is not None else None
        projected = projected[start:end]
        return SparqlResults(variables, projected)

    def iter_select(self, query: ast.SelectQuery) -> Iterator[Solution]:
        """Generator-based solution production for SELECT.

        Pattern evaluation itself is set-at-a-time — the id-encoded
        batch for the WHERE clause is computed up front — but **term
        materialization and projection are lazy**: dicts of ``Term``
        objects are built one row at a time as the consumer pulls, and
        LIMIT/OFFSET bound how many rows ever decode.  That per-row
        hand-off is what lets ``Session.stream`` fold KB-bound
        solutions page-at-a-time the way PR 3's cursors fold SQL rows
        (the enrichment pipeline consumes extractions eagerly either
        way — they are planning inputs).
        """
        if query.order_by or query.distinct:
            yield from self.select(query).solutions
            return
        batch = self._where_batch(query.where)
        variables = self._select_variables(query)
        terms = self.dictionary.terms
        columns = [(batch.index[var], var) for var in variables
                   if var in batch.index]
        start = query.offset or 0
        end = (start + query.limit) if query.limit is not None else None
        for row in itertools.islice(batch.rows, start, end):
            solution: Solution = {}
            for i, var in columns:
                value = row[i]
                if value is not None:
                    solution[var] = terms[value]
            yield solution

    def _select_variables(self,
                          query: ast.SelectQuery) -> list[ast.Variable]:
        if query.variables is None:
            return sorted(ast.group_variables(query.where),
                          key=lambda variable: variable.name)
        return query.variables

    def ask(self, query: ast.AskQuery) -> bool:
        return bool(self._where_batch(query.where).rows)

    def construct(self, query: ast.ConstructQuery) -> TripleStore:
        result = TripleStore()
        for solution in self._decode(self._where_batch(query.where)):
            for pattern in query.template:
                subject = _substitute(pattern.subject, solution)
                predicate = _substitute(pattern.predicate, solution)
                obj = _substitute(pattern.object, solution)
                if subject is None or predicate is None or obj is None:
                    continue  # incomplete instantiation is skipped
                result.add(subject, predicate, obj)
        return result


# -- shared solution modifiers (both engines) --------------------------------


def _project(solutions: list[Solution],
             variables: list[ast.Variable]) -> list[Solution]:
    return [
        {variable: solution[variable]
         for variable in variables if variable in solution}
        for solution in solutions
    ]


def _order(solutions: list[Solution], projected: list[Solution],
           order_by: list[tuple[ast.Expr, bool]]) -> list[Solution]:
    def order_key(solution: Solution):
        keys = []
        for expr, descending in order_by:
            try:
                value = evaluate(expr, solution)
            except FilterError:
                value = None
            if value is not None and not is_term(value) \
                    and not hasattr(value, "n3"):
                value = term_from_python(value)
            key = term_sort_key(value)
            keys.append(_Reversed(key) if descending else key)
        return tuple(keys)
    # Order over full solutions so ORDER BY can use any variable.
    paired = sorted(zip(solutions, projected),
                    key=lambda pair: order_key(pair[0]))
    return [projection for _solution, projection in paired]


def _distinct(projected: list[Solution]) -> list[Solution]:
    seen: set[tuple] = set()
    deduped: list[Solution] = []
    for solution in projected:
        key = tuple(sorted(
            (variable.name, repr(value))
            for variable, value in solution.items()))
        if key not in seen:
            seen.add(key)
            deduped.append(solution)
    return deduped


class NaiveEvaluator:
    """The seed solution-at-a-time interpreter (pinned baseline).

    Basic graph patterns are joined pattern-by-pattern, probing the
    store once per intermediate solution.  Kept verbatim (modulo the
    heterogeneous-boundness ordering fix shared with the planner) so
    the property suite can assert new-path/old-path equivalence and the
    E12 benchmark can gate the set-at-a-time speedup against it.
    """

    def __init__(self, store: TripleStore) -> None:
        self.store = store

    # -- group evaluation -------------------------------------------------------

    def eval_group(self, group: ast.GroupPattern,
                   seeds: Iterable[Solution]) -> list[Solution]:
        solutions = list(seeds)
        elements = list(group.elements)
        index = 0
        while index < len(elements):
            element = elements[index]
            if isinstance(element, ast.TriplePattern):
                # Collect the whole run of triple patterns and join them
                # in a selectivity-friendly order.
                run = []
                while index < len(elements) and isinstance(
                        elements[index], ast.TriplePattern):
                    run.append(elements[index])
                    index += 1
                solutions = self._eval_bgp(run, solutions)
                continue
            if isinstance(element, ast.Filter):
                solutions = [solution for solution in solutions
                             if evaluate_boolean(element.expression,
                                                 solution)]
            elif isinstance(element, ast.Bind):
                solutions = self._eval_bind(element, solutions)
            elif isinstance(element, ast.OptionalPattern):
                solutions = self._eval_optional(element.group, solutions)
            elif isinstance(element, ast.UnionPattern):
                merged: list[Solution] = []
                for branch in element.branches:
                    merged.extend(self.eval_group(branch, solutions))
                solutions = merged
            elif isinstance(element, ast.GroupPattern):
                solutions = self.eval_group(element, solutions)
            else:  # pragma: no cover - parser prevents this
                raise SparqlEvalError(
                    f"unknown pattern element {type(element).__name__}")
            index += 1
        return solutions

    def _eval_bgp(self, patterns: list[ast.TriplePattern],
                  solutions: list[Solution]) -> list[Solution]:
        remaining = list(patterns)
        bound = _initial_bound(solutions)
        while remaining:
            remaining.sort(key=lambda pattern: -_pattern_boundness(
                pattern, bound))
            pattern = remaining.pop(0)
            solutions = self._extend(pattern, solutions)
            bound.update(pattern.variables())
            if not solutions:
                return []
        return solutions

    def _extend(self, pattern: ast.TriplePattern,
                solutions: list[Solution]) -> list[Solution]:
        extended: list[Solution] = []
        for solution in solutions:
            subject = _substitute(pattern.subject, solution)
            predicate = pattern.predicate
            obj = _substitute(pattern.object, solution)
            if isinstance(predicate, ast.Variable):
                bound_predicate = solution.get(predicate)
                for triple in self.store.triples(
                        subject, bound_predicate, obj):
                    candidate = dict(solution)
                    if self._unify(pattern, triple.subject,
                                   triple.predicate, triple.object,
                                   candidate):
                        extended.append(candidate)
            elif isinstance(predicate, (ast.Path,)):
                for s_term, o_term in eval_path(
                        self.store, subject, predicate, obj):
                    candidate = dict(solution)
                    if self._unify(pattern, s_term, None, o_term, candidate):
                        extended.append(candidate)
            else:
                for triple in self.store.triples(subject, predicate, obj):
                    candidate = dict(solution)
                    if self._unify(pattern, triple.subject,
                                   triple.predicate, triple.object,
                                   candidate):
                        extended.append(candidate)
        return extended

    @staticmethod
    def _unify(pattern: ast.TriplePattern, subject: Term,
               predicate: Term | None, obj: Term,
               solution: Solution) -> bool:
        pairs = [(pattern.subject, subject), (pattern.object, obj)]
        if predicate is not None:
            pairs.append((pattern.predicate, predicate))
        for position, value in pairs:
            if isinstance(position, ast.Variable):
                existing = solution.get(position)
                if existing is None:
                    solution[position] = value
                elif existing != value:
                    return False
        return True

    def _eval_bind(self, bind: ast.Bind,
                   solutions: list[Solution]) -> list[Solution]:
        results: list[Solution] = []
        for solution in solutions:
            if bind.variable in solution:
                raise SparqlEvalError(
                    f"BIND would rebind {bind.variable.n3()}")
            candidate = dict(solution)
            try:
                value = evaluate(bind.expression, solution)
                candidate[bind.variable] = (
                    value if is_term(value)
                    or hasattr(value, "n3")
                    else term_from_python(value))
            except FilterError:
                pass  # BIND errors leave the variable unbound.
            results.append(candidate)
        return results

    def _eval_optional(self, group: ast.GroupPattern,
                       solutions: list[Solution]) -> list[Solution]:
        results: list[Solution] = []
        for solution in solutions:
            matches = self.eval_group(group, [solution])
            if matches:
                results.extend(matches)
            else:
                results.append(solution)
        return results

    # -- query forms ------------------------------------------------------------------

    def select(self, query: ast.SelectQuery) -> SparqlResults:
        solutions = self.eval_group(query.where, [{}])
        if query.variables is None:
            variables = sorted(ast.group_variables(query.where),
                               key=lambda variable: variable.name)
        else:
            variables = query.variables
        projected = _project(solutions, variables)
        if query.order_by:
            projected = _order(solutions, projected, query.order_by)
        if query.distinct:
            projected = _distinct(projected)
        start = query.offset or 0
        end = (start + query.limit) if query.limit is not None else None
        projected = projected[start:end]
        return SparqlResults(variables, projected)

    def ask(self, query: ast.AskQuery) -> bool:
        return bool(self.eval_group(query.where, [{}]))

    def construct(self, query: ast.ConstructQuery) -> TripleStore:
        result = TripleStore()
        for solution in self.eval_group(query.where, [{}]):
            for pattern in query.template:
                subject = _substitute(pattern.subject, solution)
                predicate = _substitute(pattern.predicate, solution)
                obj = _substitute(pattern.object, solution)
                if subject is None or predicate is None or obj is None:
                    continue  # incomplete instantiation is skipped
                result.add(subject, predicate, obj)
        return result


def _pattern_boundness(pattern: ast.TriplePattern,
                       bound: set[ast.Variable]) -> int:
    score = 0
    for position in (pattern.subject, pattern.predicate, pattern.object):
        if not isinstance(position, ast.Variable) or position in bound:
            score += 1
    return score


class _Reversed:
    """Inverts comparison for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.key == other.key


_EVALUATORS = {"planned": Evaluator, "naive": NaiveEvaluator}


class SparqlEngine:
    """Convenience front end binding a store to the parser + evaluator.

    ``evaluator="planned"`` (default) runs the set-at-a-time engine;
    ``"naive"`` pins the seed interpreter (equivalence tests, E12).
    """

    def __init__(self, store: TripleStore,
                 evaluator: str = "planned") -> None:
        if evaluator not in _EVALUATORS:
            raise SparqlEvalError(
                f"unknown evaluator {evaluator!r}; "
                f"expected one of {sorted(_EVALUATORS)}")
        self.store = store
        self.evaluator_kind = evaluator
        self._evaluator_class = _EVALUATORS[evaluator]

    def query(self, text: str | ast.Query):
        """Run a query; returns SparqlResults, bool (ASK) or TripleStore
        (CONSTRUCT) depending on the query form."""
        parsed = parse_sparql(text) if isinstance(text, str) else text
        evaluator = self._evaluator_class(self.store)
        if isinstance(parsed, ast.SelectQuery):
            return evaluator.select(parsed)
        if isinstance(parsed, ast.AskQuery):
            return evaluator.ask(parsed)
        if isinstance(parsed, ast.ConstructQuery):
            return evaluator.construct(parsed)
        raise SparqlEvalError(
            f"unsupported query form {type(parsed).__name__}")

    def stream(self, text: str | ast.Query) -> Iterator[Solution]:
        """Generator of SELECT solutions.

        Solutions decode to ``Term`` dicts lazily as the consumer
        pulls; the underlying pattern evaluation is set-at-a-time (see
        :meth:`Evaluator.iter_select`).
        """
        parsed = parse_sparql(text) if isinstance(text, str) else text
        if not isinstance(parsed, ast.SelectQuery):
            raise SparqlEvalError("stream() supports SELECT queries only")
        evaluator = self._evaluator_class(self.store)
        if isinstance(evaluator, Evaluator):
            return evaluator.iter_select(parsed)
        return iter(evaluator.select(parsed).solutions)
