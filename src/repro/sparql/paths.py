"""Property path evaluation over a TripleStore.

``eval_path(store, subject, path, obj)`` yields (subject, object) pairs
reachable through the path; either end may be ``None`` (unbound).
Transitive closures are computed by breadth-first search from the bound
side (or from every graph node when both ends are unbound, per the
SPARQL spec's zero-length path semantics).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from ..rdf.store import TripleStore
from ..rdf.terms import IRI, Term
from . import ast

Pair = tuple[Term, Term]


def _nodes(store: TripleStore) -> set[Term]:
    found: set[Term] = set()
    for triple in store.triples():
        found.add(triple.subject)
        found.add(triple.object)
    return found


def _step(store: TripleStore, path, node: Term,
          forward: bool = True) -> Iterator[Term]:
    """One-step neighbours of *node* through *path*."""
    if forward:
        for _s, neighbour in eval_path(store, node, path, None):
            yield neighbour
    else:
        for neighbour, _o in eval_path(store, None, path, node):
            yield neighbour


def _closure(store: TripleStore, path, start: Term,
             include_start: bool, forward: bool = True) -> Iterator[Term]:
    """Nodes reachable from *start* via one-or-more (or zero-or-more) steps."""
    seen: set[Term] = set()
    queue: deque[Term] = deque([start])
    if include_start:
        seen.add(start)
        yield start
    while queue:
        node = queue.popleft()
        for neighbour in _step(store, path, node, forward):
            if neighbour not in seen:
                seen.add(neighbour)
                queue.append(neighbour)
                yield neighbour


def eval_path(store: TripleStore, subject: Term | None, path,
              obj: Term | None) -> Iterator[Pair]:
    """All (s, o) pairs connected by *path*, honouring bound endpoints."""
    if isinstance(path, IRI):
        for triple in store.triples(subject, path, obj):
            yield (triple.subject, triple.object)
        return

    if isinstance(path, ast.InversePath):
        for o, s in eval_path(store, obj, path.inner, subject):
            yield (s, o)
        return

    if isinstance(path, ast.AlternativePath):
        seen: set[Pair] = set()
        for part in path.parts:
            for pair in eval_path(store, subject, part, obj):
                if pair not in seen:
                    seen.add(pair)
                    yield pair
        return

    if isinstance(path, ast.SequencePath):
        yield from _eval_sequence(store, subject, list(path.parts), obj)
        return

    if isinstance(path, ast.ZeroOrOnePath):
        seen = set()
        if subject is not None and obj is not None:
            if subject == obj:
                seen.add((subject, obj))
                yield (subject, obj)
        elif subject is not None:
            seen.add((subject, subject))
            yield (subject, subject)
        elif obj is not None:
            seen.add((obj, obj))
            yield (obj, obj)
        else:
            for node in _nodes(store):
                seen.add((node, node))
                yield (node, node)
        for pair in eval_path(store, subject, path.inner, obj):
            if pair not in seen:
                seen.add(pair)
                yield pair
        return

    if isinstance(path, (ast.ZeroOrMorePath, ast.OneOrMorePath)):
        include_start = isinstance(path, ast.ZeroOrMorePath)
        inner = path.inner
        if subject is not None:
            for node in _closure(store, inner, subject, include_start):
                if obj is None or node == obj:
                    yield (subject, node)
            return
        if obj is not None:
            for node in _closure(store, inner, obj, include_start,
                                 forward=False):
                yield (node, obj)
            return
        for start in _nodes(store):
            for node in _closure(store, inner, start, include_start):
                yield (start, node)
        return

    raise TypeError(f"not a property path: {path!r}")


def _eval_sequence(store: TripleStore, subject: Term | None,
                   parts: list, obj: Term | None) -> Iterator[Pair]:
    if len(parts) == 1:
        yield from eval_path(store, subject, parts[0], obj)
        return
    head, tail = parts[0], parts[1:]
    seen: set[Pair] = set()
    for s, middle in eval_path(store, subject, head, None):
        for _m, o in _eval_sequence(store, middle, tail, obj):
            pair = (s, o)
            if pair not in seen:
                seen.add(pair)
                yield pair
