"""SPARQL abstract syntax: patterns, property paths and expressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..rdf.terms import IRI, Term


@dataclass(frozen=True, slots=True, eq=False)
class Variable:
    """A SPARQL variable (``?x`` / ``$x``).

    Equality and hashing delegate to the name string — CPython caches a
    str's hash on the object, so solution dicts keyed by variables (the
    evaluator's result shape) hash at C speed instead of re-hashing a
    dataclass field tuple per access.
    """

    name: str

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)

    def n3(self) -> str:
        return f"?{self.name}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.n3()


PatternTerm = Union[Term, Variable]


# -- property paths ----------------------------------------------------------

class Path:
    __slots__ = ()


@dataclass(frozen=True)
class InversePath(Path):
    inner: "PathLike"


@dataclass(frozen=True)
class SequencePath(Path):
    parts: tuple


@dataclass(frozen=True)
class AlternativePath(Path):
    parts: tuple


@dataclass(frozen=True)
class ZeroOrMorePath(Path):
    inner: "PathLike"


@dataclass(frozen=True)
class OneOrMorePath(Path):
    inner: "PathLike"


@dataclass(frozen=True)
class ZeroOrOnePath(Path):
    inner: "PathLike"


PathLike = Union[IRI, Path]


# -- graph patterns -------------------------------------------------------------

@dataclass
class TriplePattern:
    subject: PatternTerm
    predicate: Union[PatternTerm, Path]
    object: PatternTerm

    def variables(self) -> set[Variable]:
        found = set()
        for position in (self.subject, self.predicate, self.object):
            if isinstance(position, Variable):
                found.add(position)
        return found


@dataclass
class Filter:
    expression: "Expr"


@dataclass
class Bind:
    expression: "Expr"
    variable: Variable


@dataclass
class GroupPattern:
    elements: list = field(default_factory=list)


@dataclass
class OptionalPattern:
    group: GroupPattern


@dataclass
class UnionPattern:
    branches: list[GroupPattern] = field(default_factory=list)


PatternElement = Union[TriplePattern, Filter, Bind, GroupPattern,
                       OptionalPattern, UnionPattern]


# -- expressions -------------------------------------------------------------------

class Expr:
    __slots__ = ()


@dataclass
class VarExpr(Expr):
    variable: Variable


@dataclass
class TermExpr(Expr):
    term: Term


@dataclass
class UnaryExpr(Expr):
    op: str  # '!', '-', '+'
    operand: Expr


@dataclass
class BinaryExpr(Expr):
    op: str  # '&&', '||', '=', '!=', '<', '<=', '>', '>=', '+', '-', '*', '/'
    left: Expr
    right: Expr


@dataclass
class CallExpr(Expr):
    name: str  # upper-cased builtin name
    args: list[Expr] = field(default_factory=list)


# -- queries ---------------------------------------------------------------------------

@dataclass
class SelectQuery:
    variables: Optional[list[Variable]]  # None means '*'
    where: GroupPattern
    distinct: bool = False
    order_by: list[tuple[Expr, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None


@dataclass
class AskQuery:
    where: GroupPattern


@dataclass
class ConstructQuery:
    template: list[TriplePattern]
    where: GroupPattern


Query = Union[SelectQuery, AskQuery, ConstructQuery]


def group_variables(group: GroupPattern) -> set[Variable]:
    """All variables mentioned anywhere in a group (for SELECT *)."""
    found: set[Variable] = set()

    def visit(element) -> None:
        if isinstance(element, TriplePattern):
            found.update(element.variables())
        elif isinstance(element, GroupPattern):
            for child in element.elements:
                visit(child)
        elif isinstance(element, OptionalPattern):
            visit(element.group)
        elif isinstance(element, UnionPattern):
            for branch in element.branches:
                visit(branch)
        elif isinstance(element, Bind):
            found.add(element.variable)
        # Filters do not introduce bindings.

    visit(group)
    return found
