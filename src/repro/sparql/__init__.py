"""SPARQL subset engine over :class:`repro.rdf.TripleStore`.

Supported forms: SELECT (DISTINCT, ORDER BY, LIMIT/OFFSET), ASK and
CONSTRUCT, with basic graph patterns, FILTER, OPTIONAL, UNION, BIND and
property paths.  This is the query language the SESQL Semantic Query
Module (SQM) generates against per-user knowledge bases.
"""

from .ast import Variable
from .errors import (FilterError, SparqlError, SparqlEvalError,
                     SparqlSyntaxError)
from .evaluator import Evaluator, SparqlEngine, SparqlResults
from .parser import parse_sparql

__all__ = [
    "SparqlEngine", "SparqlResults", "Evaluator", "Variable",
    "parse_sparql", "SparqlError", "SparqlSyntaxError", "SparqlEvalError",
    "FilterError",
]
