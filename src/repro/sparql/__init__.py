"""SPARQL subset engine over :class:`repro.rdf.TripleStore`.

Supported forms: SELECT (DISTINCT, ORDER BY, LIMIT/OFFSET), ASK and
CONSTRUCT, with basic graph patterns, FILTER, OPTIONAL, UNION, BIND and
property paths.  This is the query language the SESQL Semantic Query
Module (SQM) generates against per-user knowledge bases.
"""

from .ast import Variable
from .errors import (FilterError, SparqlError, SparqlEvalError,
                     SparqlSyntaxError)
from .evaluator import (Evaluator, NaiveEvaluator, SparqlEngine,
                        SparqlResults)
from .parser import parse_sparql
from .planner import PatternStep, estimate_pattern, order_bgp

__all__ = [
    "SparqlEngine", "SparqlResults", "Evaluator", "NaiveEvaluator",
    "Variable", "parse_sparql", "PatternStep", "estimate_pattern",
    "order_bgp", "SparqlError", "SparqlSyntaxError", "SparqlEvalError",
    "FilterError",
]
