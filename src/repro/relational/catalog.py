"""The catalog: the namespace of tables and indexes inside one database."""

from __future__ import annotations

from .errors import CatalogError
from .schema import TableSchema
from .table import Table


class Catalog:
    """Case-insensitive registry of tables (and their indexes)."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create_table(self, schema: TableSchema,
                     if_not_exists: bool = False) -> Table | None:
        key = schema.name.lower()
        if key in self._tables:
            if if_not_exists:
                return None
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[key] = table
        return table

    def register_table(self, table: Table) -> None:
        """Adopt an externally constructed table (used by foreign wrappers)."""
        key = table.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def table_names(self) -> list[str]:
        # list() first: a single atomic snapshot, safe against the
        # lock-free temp-table injection of the SESQL WHERE rewrite
        # (a plain comprehension over .values() could observe a resize
        # mid-iteration).
        return [table.name for table in list(self._tables.values())]

    def find_index(self, index_name: str) -> tuple[Table, str] | None:
        for table in list(self._tables.values()):
            if index_name in table.indexes:
                return table, index_name
        return None
