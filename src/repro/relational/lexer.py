"""SQL tokenizer.

Produces a flat token stream for the recursive-descent parser.  Keywords
are recognised case-insensitively; double-quoted identifiers preserve
case; single-quoted strings use ``''`` as the escape for a quote.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SqlSyntaxError

KEYWORDS = frozenset("""
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET AS DISTINCT ALL
    AND OR NOT IN IS NULL LIKE BETWEEN EXISTS CASE WHEN THEN ELSE END CAST
    JOIN INNER LEFT RIGHT FULL OUTER CROSS ON UNION INTERSECT EXCEPT
    INSERT INTO VALUES UPDATE SET DELETE CREATE TABLE DROP INDEX UNIQUE
    PRIMARY KEY DEFAULT IF TRUE FALSE ASC DESC USING ANALYZE
""".split())

# Longest-match first.
_OPERATORS = ("||", "<>", "!=", "<=", ">=", "<", ">", "=", "+", "-", "*",
              "/", "%", "(", ")", ",", ".", ";")


@dataclass
class Token:
    type: str  # 'KEYWORD', 'IDENT', 'NUMBER', 'STRING', 'OP', 'EOF'
    value: object
    position: int
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.type == "KEYWORD" and self.value in names

    def is_op(self, *ops: str) -> bool:
        return self.type == "OP" and self.value in ops

    def describe(self) -> str:
        if self.type == "EOF":
            return "end of input"
        return repr(self.value)


class SqlLexer:
    """Single-pass tokenizer over a SQL string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> SqlSyntaxError:
        return SqlSyntaxError(message, self.position, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.position < len(self.text):
                if self.text[self.position] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.position += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.text):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self.position < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.position < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def _make(self, token_type: str, value: object,
              position: int, line: int, column: int) -> Token:
        return Token(token_type, value, position, line, column)

    def tokens(self) -> list[Token]:
        """Tokenize the whole input, ending with an EOF token."""
        result: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            start, line, column = self.position, self.line, self.column
            if self.position >= len(self.text):
                result.append(self._make("EOF", None, start, line, column))
                return result
            char = self._peek()
            if char == "'":
                result.append(self._string(start, line, column))
            elif char == '"':
                result.append(self._quoted_identifier(start, line, column))
            elif char.isdigit() or (char == "." and self._peek(1).isdigit()):
                result.append(self._number(start, line, column))
            elif char.isalpha() or char == "_":
                result.append(self._word(start, line, column))
            else:
                op = self._operator()
                if op is None:
                    raise self._error(f"unexpected character {char!r}")
                result.append(self._make("OP", op, start, line, column))

    def _string(self, start: int, line: int, column: int) -> Token:
        self._advance()  # opening quote
        pieces: list[str] = []
        while True:
            if self.position >= len(self.text):
                raise self._error("unterminated string literal")
            char = self._peek()
            if char == "'":
                if self._peek(1) == "'":
                    pieces.append("'")
                    self._advance(2)
                else:
                    self._advance()
                    break
            else:
                pieces.append(char)
                self._advance()
        return self._make("STRING", "".join(pieces), start, line, column)

    def _quoted_identifier(self, start: int, line: int, column: int) -> Token:
        self._advance()
        pieces: list[str] = []
        while True:
            if self.position >= len(self.text):
                raise self._error("unterminated quoted identifier")
            char = self._peek()
            if char == '"':
                if self._peek(1) == '"':
                    pieces.append('"')
                    self._advance(2)
                else:
                    self._advance()
                    break
            else:
                pieces.append(char)
                self._advance()
        if not pieces:
            raise self._error("empty quoted identifier")
        return self._make("IDENT", "".join(pieces), start, line, column)

    def _number(self, start: int, line: int, column: int) -> Token:
        text_start = self.position
        saw_dot = False
        saw_exp = False
        while self.position < len(self.text):
            char = self._peek()
            if char.isdigit():
                self._advance()
            elif char == "." and not saw_dot and not saw_exp:
                # A trailing '.' followed by a non-digit belongs to the
                # parser (qualified stars like "t.*" never reach here since
                # identifiers take the word path).
                if not self._peek(1).isdigit():
                    break
                saw_dot = True
                self._advance()
            elif char in "eE" and not saw_exp:
                lookahead = self._peek(1)
                if lookahead.isdigit() or (lookahead in "+-"
                                           and self._peek(2).isdigit()):
                    saw_exp = True
                    self._advance(2 if lookahead in "+-" else 1)
                else:
                    break
            else:
                break
        text = self.text[text_start:self.position]
        value: object
        if saw_dot or saw_exp:
            value = float(text)
        else:
            value = int(text)
        return self._make("NUMBER", value, start, line, column)

    def _word(self, start: int, line: int, column: int) -> Token:
        text_start = self.position
        while self.position < len(self.text):
            char = self._peek()
            if char.isalnum() or char == "_":
                self._advance()
            else:
                break
        word = self.text[text_start:self.position]
        upper = word.upper()
        if upper in KEYWORDS:
            return self._make("KEYWORD", upper, start, line, column)
        return self._make("IDENT", word, start, line, column)

    def _operator(self) -> str | None:
        for op in _OPERATORS:
            if self.text.startswith(op, self.position):
                self._advance(len(op))
                return "<>" if op == "!=" else op
        return None


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: tokenize *text* into a list ending with EOF."""
    return SqlLexer(text).tokens()
