"""SQL value model: data types, coercion rules and three-valued logic.

The engine stores values as plain Python objects:

* SQL ``NULL``     -> ``None``
* ``INTEGER``      -> ``int``
* ``REAL``         -> ``float``
* ``TEXT``         -> ``str``
* ``BOOLEAN``      -> ``bool``

Boolean *expressions* evaluate in three-valued logic (3VL): ``True``,
``False`` and *unknown*, where unknown is represented by ``None``.  The
helpers :func:`and3`, :func:`or3` and :func:`not3` implement the SQL truth
tables; WHERE clauses keep a row only when the predicate is exactly
``True``.
"""

from __future__ import annotations

import enum
import math
from typing import Any

from .errors import TypeMismatchError


class DataType(enum.Enum):
    """Column data types supported by the engine."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_TYPE_ALIASES = {
    "INT": DataType.INTEGER,
    "INTEGER": DataType.INTEGER,
    "BIGINT": DataType.INTEGER,
    "SMALLINT": DataType.INTEGER,
    "REAL": DataType.REAL,
    "FLOAT": DataType.REAL,
    "DOUBLE": DataType.REAL,
    "NUMERIC": DataType.REAL,
    "DECIMAL": DataType.REAL,
    "TEXT": DataType.TEXT,
    "VARCHAR": DataType.TEXT,
    "CHAR": DataType.TEXT,
    "STRING": DataType.TEXT,
    "BOOLEAN": DataType.BOOLEAN,
    "BOOL": DataType.BOOLEAN,
}


def parse_type_name(name: str) -> DataType:
    """Map a SQL type name (with aliases such as ``VARCHAR``) to a DataType."""
    normalized = name.strip().upper()
    # Strip a length suffix such as VARCHAR(40).
    if "(" in normalized:
        normalized = normalized[: normalized.index("(")].strip()
    if normalized not in _TYPE_ALIASES:
        raise TypeMismatchError(f"unknown SQL type: {name!r}")
    return _TYPE_ALIASES[normalized]


def coerce_value(value: Any, data_type: DataType) -> Any:
    """Coerce a Python value to the storage representation of *data_type*.

    ``None`` passes through (NULL is typeless).  Raises
    :class:`TypeMismatchError` when no faithful conversion exists, e.g.
    ``coerce_value('abc', INTEGER)``.
    """
    if value is None:
        return None
    if data_type is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError as exc:
                raise TypeMismatchError(
                    f"cannot store {value!r} in INTEGER column") from exc
        raise TypeMismatchError(f"cannot store {value!r} in INTEGER column")
    if data_type is DataType.REAL:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError as exc:
                raise TypeMismatchError(
                    f"cannot store {value!r} in REAL column") from exc
        raise TypeMismatchError(f"cannot store {value!r} in REAL column")
    if data_type is DataType.TEXT:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (int, float)):
            return format_value(value)
        raise TypeMismatchError(f"cannot store {value!r} in TEXT column")
    if data_type is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str) and value.lower() in ("true", "false", "t", "f"):
            return value.lower() in ("true", "t")
        raise TypeMismatchError(f"cannot store {value!r} in BOOLEAN column")
    raise TypeMismatchError(f"unsupported data type {data_type}")


def infer_type(value: Any) -> DataType | None:
    """Infer a DataType from a Python value; ``None`` for NULL."""
    if value is None:
        return None
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.REAL
    if isinstance(value, str):
        return DataType.TEXT
    raise TypeMismatchError(f"unsupported Python value {value!r}")


def format_value(value: Any) -> str:
    """Render a value the way result printers and TEXT casts display it."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isinf(value) or math.isnan(value):
            return str(value)
        if value.is_integer():
            return f"{value:.1f}"
        return repr(value)
    return str(value)


# --------------------------------------------------------------------------
# Three-valued logic.  Unknown is represented by None.
# --------------------------------------------------------------------------

def and3(left: bool | None, right: bool | None) -> bool | None:
    """SQL AND: false dominates, unknown otherwise propagates."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def or3(left: bool | None, right: bool | None) -> bool | None:
    """SQL OR: true dominates, unknown otherwise propagates."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def not3(operand: bool | None) -> bool | None:
    """SQL NOT: unknown stays unknown."""
    if operand is None:
        return None
    return not operand


def is_true(value: bool | None) -> bool:
    """WHERE-clause acceptance: only a definite ``True`` passes."""
    return value is True


# --------------------------------------------------------------------------
# Comparison semantics shared by the evaluator, indexes and sorting.
# --------------------------------------------------------------------------

def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_values(left: Any, right: Any) -> int | None:
    """Compare two non-NULL-or-NULL values; returns -1/0/1 or None (unknown).

    * any NULL operand yields ``None`` (unknown),
    * numbers compare numerically across int/float,
    * strings compare lexicographically,
    * booleans compare with False < True,
    * mixed incompatible types raise :class:`TypeMismatchError`.
    """
    if left is None or right is None:
        return None
    if _is_numeric(left) and _is_numeric(right):
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    if isinstance(left, str) and isinstance(right, str):
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    if isinstance(left, bool) and isinstance(right, bool):
        return (left > right) - (left < right)
    raise TypeMismatchError(
        f"cannot compare {type(left).__name__} with {type(right).__name__}")


def values_equal(left: Any, right: Any) -> bool | None:
    """SQL equality: NULL-propagating, type-lenient.

    Unlike ordered comparison, equality between *incompatible* types is
    simply ``False`` (e.g. ``1 = 'a'``); this keeps enrichment joins robust
    when RDF literals and SQL values disagree on type.
    """
    if left is None or right is None:
        return None
    if _is_numeric(left) and _is_numeric(right):
        # Plain == is exact across int/float (unlike coercing both to
        # float, which collapses distinct integers beyond 2**53) and so
        # agrees with compare_values and with index bucketing.
        return left == right
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, bool) and isinstance(right, bool):
            return left == right
        return False
    if type(left) is type(right):
        return left == right
    return False


class _NullsOrderKey:
    """Sort key wrapper implementing NULL placement and type-safe ordering."""

    __slots__ = ("value", "descending", "nulls_low")

    def __init__(self, value: Any, descending: bool, nulls_low: bool) -> None:
        self.value = value
        self.descending = descending
        self.nulls_low = nulls_low

    def __lt__(self, other: "_NullsOrderKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return self.nulls_low
        if b is None:
            return not self.nulls_low
        result = compare_values(a, b)
        if result is None:  # pragma: no cover - both non-null here
            return False
        if self.descending:
            return result > 0
        return result < 0

    def __eq__(self, other: object) -> bool:
        # Required so tuple comparison falls through to later sort keys.
        if not isinstance(other, _NullsOrderKey):
            return NotImplemented
        a, b = self.value, other.value
        if a is None or b is None:
            return a is None and b is None
        return compare_values(a, b) == 0


def sort_key(value: Any, descending: bool = False,
             nulls_low: bool | None = None) -> _NullsOrderKey:
    """Build a sort key: PostgreSQL default is NULLS LAST for ASC."""
    if nulls_low is None:
        nulls_low = descending  # ASC -> nulls high (last); DESC -> first.
    return _NullsOrderKey(value, descending, nulls_low)
