"""Secondary index structures for heap tables.

Two index kinds are provided:

* :class:`HashIndex` — equality lookups (the workhorse for enrichment
  joins and foreign-key style probes);
* :class:`SortedIndex` — range lookups via a sorted key list kept in sync
  with bisection (a stand-in for a B-tree; adequate at in-memory scale).

Both map *key tuples* to sets of row ids; NULL-containing keys are never
indexed (SQL indexes skip NULL keys for uniqueness purposes).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

from .errors import ConstraintViolation


def _normalize(value: Any) -> Any:
    """Normalise values so index keys agree with executor equality.

    The tuple tag keeps the SQL type families apart (``1 = TRUE`` is
    false, so booleans must not share a bucket with numbers).  Numbers
    are kept *exact*: Python already hashes ``1`` and ``1.0`` to the
    same bucket, while coercing through ``float`` — as an earlier
    version did — collapses integers beyond 2**53 and makes an index
    probe return rows the executor's ``=`` would reject.  ``None`` maps
    to a dedicated marker so composite keys round-trip NULLs distinctly
    from any storable value (indexes still never *index* NULL keys).
    """
    if value is None:
        return ("null",)
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", value)
    if isinstance(value, str):
        return ("s", value)
    return ("o", value)


class HashIndex:
    """Equality index over one or more columns of a table."""

    kind = "hash"

    def __init__(self, name: str, table_name: str, column_names: list[str],
                 unique: bool = False) -> None:
        self.name = name
        self.table_name = table_name
        self.column_names = list(column_names)
        self.unique = unique
        self._buckets: dict[tuple, set[int]] = {}

    def _key(self, values: tuple) -> tuple | None:
        if any(value is None for value in values):
            return None
        return tuple(_normalize(value) for value in values)

    def insert(self, row_id: int, values: tuple) -> None:
        key = self._key(values)
        if key is None:
            return
        bucket = self._buckets.setdefault(key, set())
        if self.unique and bucket:
            raise ConstraintViolation(
                f"UNIQUE index {self.name!r} violated by key {values!r}")
        bucket.add(row_id)

    def delete(self, row_id: int, values: tuple) -> None:
        key = self._key(values)
        if key is None:
            return
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._buckets[key]

    def lookup(self, values: tuple) -> set[int]:
        key = self._key(values)
        if key is None:
            return set()
        return set(self._buckets.get(key, ()))

    def contains_key(self, values: tuple) -> bool:
        key = self._key(values)
        return key is not None and key in self._buckets

    def clear(self) -> None:
        """Drop every entry (the index definition stays)."""
        self._buckets.clear()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class SortedIndex:
    """Ordered index supporting range scans over a single column."""

    kind = "sorted"

    def __init__(self, name: str, table_name: str, column_names: list[str],
                 unique: bool = False) -> None:
        if len(column_names) != 1:
            raise ConstraintViolation(
                "sorted indexes support exactly one column")
        self.name = name
        self.table_name = table_name
        self.column_names = list(column_names)
        self.unique = unique
        # Parallel arrays of (key, row_id) kept sorted by key then row id.
        self._entries: list[tuple[Any, int]] = []

    @staticmethod
    def _sortable(value: Any) -> Any:
        if isinstance(value, bool):
            return (0, int(value))
        if isinstance(value, (int, float)):
            return (1, float(value))
        return (2, str(value))

    def insert(self, row_id: int, values: tuple) -> None:
        value = values[0]
        if value is None:
            return
        entry = (self._sortable(value), row_id)
        position = bisect.bisect_left(self._entries, entry)
        if self.unique:
            key = entry[0]
            if position < len(self._entries) and self._entries[position][0] == key:
                raise ConstraintViolation(
                    f"UNIQUE index {self.name!r} violated by key {value!r}")
            if position > 0 and self._entries[position - 1][0] == key:
                raise ConstraintViolation(
                    f"UNIQUE index {self.name!r} violated by key {value!r}")
        self._entries.insert(position, entry)

    def delete(self, row_id: int, values: tuple) -> None:
        value = values[0]
        if value is None:
            return
        entry = (self._sortable(value), row_id)
        position = bisect.bisect_left(self._entries, entry)
        if position < len(self._entries) and self._entries[position] == entry:
            self._entries.pop(position)

    def lookup(self, values: tuple) -> set[int]:
        value = values[0]
        if value is None:
            return set()
        key = self._sortable(value)
        start = bisect.bisect_left(self._entries, (key, -1))
        found: set[int] = set()
        for entry_key, row_id in self._entries[start:]:
            if entry_key != key:
                break
            found.add(row_id)
        return found

    def range(self, low: Any = None, high: Any = None,
              low_inclusive: bool = True,
              high_inclusive: bool = True) -> Iterator[int]:
        """Yield row ids whose key falls within [low, high]."""
        if low is None:
            start = 0
        else:
            key = self._sortable(low)
            if low_inclusive:
                start = bisect.bisect_left(self._entries, (key, -1))
            else:
                start = bisect.bisect_right(
                    self._entries, (key, float("inf")))
        for entry_key, row_id in self._entries[start:]:
            if high is not None:
                high_key = self._sortable(high)
                if high_inclusive:
                    if entry_key > high_key:
                        break
                elif entry_key >= high_key:
                    break
            yield row_id

    def clear(self) -> None:
        """Drop every entry (the index definition stays)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


IndexType = HashIndex | SortedIndex


def build_index(kind: str, name: str, table_name: str,
                column_names: Iterable[str], unique: bool = False) -> IndexType:
    """Index factory used by DDL execution."""
    columns = list(column_names)
    if kind == "hash":
        return HashIndex(name, table_name, columns, unique)
    if kind == "sorted":
        return SortedIndex(name, table_name, columns, unique)
    raise ConstraintViolation(f"unknown index kind {kind!r}")
