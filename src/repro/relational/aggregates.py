"""Aggregate function implementations (COUNT/SUM/AVG/MIN/MAX/GROUP_CONCAT).

Each aggregate is a small state machine: ``initial()`` produces the state,
``step(state, args)`` folds one input row in, ``final(state)`` yields the
result.  DISTINCT handling is done by the executor, which de-duplicates
argument tuples before calling ``step``.
"""

from __future__ import annotations

from typing import Any

from .errors import ExecutionError, TypeMismatchError
from .types import compare_values


class Aggregate:
    """Base aggregate; subclasses override the three-phase protocol."""

    name = "?"

    def initial(self) -> Any:
        raise NotImplementedError

    def step(self, state: Any, args: tuple) -> Any:
        raise NotImplementedError

    def final(self, state: Any) -> Any:
        raise NotImplementedError


class CountStar(Aggregate):
    name = "COUNT(*)"

    def initial(self) -> int:
        return 0

    def step(self, state: int, args: tuple) -> int:
        return state + 1

    def final(self, state: int) -> int:
        return state


class Count(Aggregate):
    name = "COUNT"

    def initial(self) -> int:
        return 0

    def step(self, state: int, args: tuple) -> int:
        if args[0] is None:
            return state
        return state + 1

    def final(self, state: int) -> int:
        return state


class Sum(Aggregate):
    name = "SUM"

    def initial(self) -> Any:
        return None

    def step(self, state: Any, args: tuple) -> Any:
        value = args[0]
        if value is None:
            return state
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(
                f"SUM expects numbers, got {type(value).__name__}")
        if state is None:
            return value
        return state + value

    def final(self, state: Any) -> Any:
        return state


class Avg(Aggregate):
    name = "AVG"

    def initial(self) -> tuple[float, int]:
        return (0.0, 0)

    def step(self, state: tuple[float, int], args: tuple) -> tuple[float, int]:
        value = args[0]
        if value is None:
            return state
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(
                f"AVG expects numbers, got {type(value).__name__}")
        total, count = state
        return (total + float(value), count + 1)

    def final(self, state: tuple[float, int]) -> Any:
        total, count = state
        if count == 0:
            return None
        return total / count


class Min(Aggregate):
    name = "MIN"

    def initial(self) -> Any:
        return None

    def step(self, state: Any, args: tuple) -> Any:
        value = args[0]
        if value is None:
            return state
        if state is None or compare_values(value, state) < 0:
            return value
        return state

    def final(self, state: Any) -> Any:
        return state


class Max(Aggregate):
    name = "MAX"

    def initial(self) -> Any:
        return None

    def step(self, state: Any, args: tuple) -> Any:
        value = args[0]
        if value is None:
            return state
        if state is None or compare_values(value, state) > 0:
            return value
        return state

    def final(self, state: Any) -> Any:
        return state


class GroupConcat(Aggregate):
    """GROUP_CONCAT(value[, separator]) — separator defaults to ','."""

    name = "GROUP_CONCAT"

    def initial(self) -> tuple[list[str], str]:
        return ([], ",")

    def step(self, state: tuple[list[str], str],
             args: tuple) -> tuple[list[str], str]:
        pieces, separator = state
        value = args[0]
        if len(args) > 1 and args[1] is not None:
            separator = str(args[1])
        if value is not None:
            pieces.append(value if isinstance(value, str) else str(value))
        return (pieces, separator)

    def final(self, state: tuple[list[str], str]) -> Any:
        pieces, separator = state
        if not pieces:
            return None
        return separator.join(pieces)


def make_aggregate(name: str, star: bool, arg_count: int) -> Aggregate:
    """Aggregate factory; validates the COUNT(*) form and arities."""
    upper = name.upper()
    if star:
        if upper != "COUNT":
            raise ExecutionError(f"{upper}(*) is not a valid aggregate")
        return CountStar()
    classes: dict[str, type[Aggregate]] = {
        "COUNT": Count, "SUM": Sum, "AVG": Avg, "MIN": Min, "MAX": Max,
        "GROUP_CONCAT": GroupConcat,
    }
    if upper not in classes:
        raise ExecutionError(f"unknown aggregate {name!r}")
    if upper == "GROUP_CONCAT":
        if arg_count not in (1, 2):
            raise ExecutionError("GROUP_CONCAT takes 1 or 2 arguments")
    elif arg_count != 1:
        raise ExecutionError(f"{upper} takes exactly 1 argument")
    return classes[upper]()


AGGREGATE_NAMES = frozenset(
    {"COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP_CONCAT"})
