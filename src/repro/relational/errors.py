"""Exception hierarchy for the relational engine.

Every error raised by the relational substrate derives from
:class:`RelationalError`, so callers (the SESQL engine, the federation
mediator) can catch one base class at the integration boundary.
"""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for all relational-engine errors."""


class SqlSyntaxError(RelationalError):
    """Raised by the lexer/parser on malformed SQL.

    Carries the offending position so callers can point at the source.
    """

    def __init__(self, message: str, position: int | None = None,
                 line: int | None = None, column: int | None = None) -> None:
        self.position = position
        self.line = line
        self.column = column
        location = ""
        if line is not None and column is not None:
            location = f" at line {line}, column {column}"
        elif position is not None:
            location = f" at offset {position}"
        super().__init__(f"{message}{location}")


class CatalogError(RelationalError):
    """Unknown or duplicate table/index names."""


class SchemaError(RelationalError):
    """Bad table definitions or column references."""


class AmbiguousColumnError(SchemaError):
    """An unqualified column name matches more than one visible column."""


class UnknownColumnError(SchemaError):
    """A column reference matches nothing in scope."""


class TypeMismatchError(RelationalError):
    """An operation was applied to operands of incompatible types."""


class ConstraintViolation(RelationalError):
    """NOT NULL / PRIMARY KEY / UNIQUE constraint failures."""


class NotSupportedError(RelationalError):
    """A recognised but unimplemented SQL construct."""


class ExecutionError(RelationalError):
    """Runtime failures during query evaluation (division by zero, ...)."""
