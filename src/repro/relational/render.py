"""Render AST nodes back to SQL text.

The SESQL engine builds the *final query* of the Fig. 6 pipeline as an
AST and renders it with this module, so the enriched query that runs on
the temporary support database is observable as plain SQL (useful in
logs, tests and the EXPERIMENTS harness).
"""

from __future__ import annotations

from . import ast
from .errors import NotSupportedError


def quote_identifier(name: str) -> str:
    """Quote an identifier when it is not a plain lowercase-safe word."""
    if name.isidentifier() and not name.upper() in _RESERVED:
        return name
    return '"' + name.replace('"', '""') + '"'


_RESERVED = frozenset("""
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET AS DISTINCT ALL
    AND OR NOT IN IS NULL LIKE BETWEEN EXISTS CASE WHEN THEN ELSE END CAST
    JOIN INNER LEFT RIGHT FULL OUTER CROSS ON UNION INTERSECT EXCEPT
    INSERT INTO VALUES UPDATE SET DELETE CREATE TABLE DROP INDEX UNIQUE
    PRIMARY KEY DEFAULT IF TRUE FALSE ASC DESC USING ANALYZE
""".split())


def render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise NotSupportedError(f"cannot render literal {value!r}")


def render_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Literal):
        return render_literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        if expr.qualifier:
            return (f"{quote_identifier(expr.qualifier)}."
                    f"{quote_identifier(expr.name)}")
        return quote_identifier(expr.name)
    if isinstance(expr, ast.Star):
        if expr.qualifier:
            return f"{quote_identifier(expr.qualifier)}.*"
        return "*"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return f"NOT ({render_expr(expr.operand)})"
        return f"{expr.op}({render_expr(expr.operand)})"
    if isinstance(expr, ast.BinaryOp):
        return (f"({render_expr(expr.left)} {expr.op} "
                f"{render_expr(expr.right)})")
    if isinstance(expr, ast.IsNull):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({render_expr(expr.operand)} {keyword})"
    if isinstance(expr, ast.Like):
        keyword = "NOT LIKE" if expr.negated else "LIKE"
        return (f"({render_expr(expr.operand)} {keyword} "
                f"{render_expr(expr.pattern)})")
    if isinstance(expr, ast.InList):
        keyword = "NOT IN" if expr.negated else "IN"
        items = ", ".join(render_expr(item) for item in expr.items)
        return f"({render_expr(expr.operand)} {keyword} ({items}))"
    if isinstance(expr, ast.InSubquery):
        keyword = "NOT IN" if expr.negated else "IN"
        return (f"({render_expr(expr.operand)} {keyword} "
                f"({render_query(expr.query)}))")
    if isinstance(expr, ast.Exists):
        keyword = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{keyword} ({render_query(expr.query)})"
    if isinstance(expr, ast.Between):
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (f"({render_expr(expr.operand)} {keyword} "
                f"{render_expr(expr.low)} AND {render_expr(expr.high)})")
    if isinstance(expr, ast.FunctionCall):
        if expr.star:
            return f"{expr.name.upper()}(*)"
        prefix = "DISTINCT " if expr.distinct else ""
        args = ", ".join(render_expr(arg) for arg in expr.args)
        return f"{expr.name.upper()}({prefix}{args})"
    if isinstance(expr, ast.CaseExpr):
        pieces = ["CASE"]
        if expr.operand is not None:
            pieces.append(render_expr(expr.operand))
        for condition, result in expr.whens:
            pieces.append(
                f"WHEN {render_expr(condition)} THEN {render_expr(result)}")
        if expr.else_result is not None:
            pieces.append(f"ELSE {render_expr(expr.else_result)}")
        pieces.append("END")
        return " ".join(pieces)
    if isinstance(expr, ast.Cast):
        return f"CAST({render_expr(expr.operand)} AS {expr.type_name})"
    if isinstance(expr, ast.ScalarSubquery):
        return f"({render_query(expr.query)})"
    raise NotSupportedError(f"cannot render {type(expr).__name__}")


def render_table_expr(table_expr: ast.TableExpr) -> str:
    if isinstance(table_expr, ast.TableRef):
        text = quote_identifier(table_expr.name)
        if table_expr.alias:
            text += f" AS {quote_identifier(table_expr.alias)}"
        return text
    if isinstance(table_expr, ast.SubqueryRef):
        return (f"({render_query(table_expr.query)}) AS "
                f"{quote_identifier(table_expr.alias)}")
    if isinstance(table_expr, ast.Join):
        left = render_table_expr(table_expr.left)
        right = render_table_expr(table_expr.right)
        if table_expr.join_type == "CROSS" or table_expr.condition is None:
            return f"{left} CROSS JOIN {right}"
        keyword = ("LEFT JOIN" if table_expr.join_type == "LEFT"
                   else "JOIN")
        return (f"{left} {keyword} {right} "
                f"ON {render_expr(table_expr.condition)}")
    raise NotSupportedError(
        f"cannot render {type(table_expr).__name__} in FROM")


def render_core(core: ast.SelectCore) -> str:
    pieces = ["SELECT"]
    if core.distinct:
        pieces.append("DISTINCT")
    rendered_items = []
    for item in core.items:
        text = render_expr(item.expr)
        if item.alias:
            text += f" AS {quote_identifier(item.alias)}"
        rendered_items.append(text)
    pieces.append(", ".join(rendered_items))
    if core.from_clause is not None:
        pieces.append("FROM " + render_table_expr(core.from_clause))
    if core.where is not None:
        pieces.append("WHERE " + render_expr(core.where))
    if core.group_by:
        pieces.append("GROUP BY "
                      + ", ".join(render_expr(expr) for expr in core.group_by))
    if core.having is not None:
        pieces.append("HAVING " + render_expr(core.having))
    return " ".join(pieces)


def render_query(query: ast.SelectQuery) -> str:
    pieces = [render_core(query.core)]
    for operation, core in query.compounds:
        pieces.append(operation)
        pieces.append(render_core(core))
    if query.order_by:
        rendered = []
        for item in query.order_by:
            text = render_expr(item.expr)
            if item.descending:
                text += " DESC"
            rendered.append(text)
        pieces.append("ORDER BY " + ", ".join(rendered))
    if query.limit is not None:
        pieces.append("LIMIT " + render_expr(query.limit))
    if query.offset is not None:
        pieces.append("OFFSET " + render_expr(query.offset))
    return " ".join(pieces)


def render_statement(stmt: ast.Statement) -> str:
    if isinstance(stmt, ast.SelectQuery):
        return render_query(stmt)
    if isinstance(stmt, ast.InsertStmt):
        pieces = [f"INSERT INTO {quote_identifier(stmt.table)}"]
        if stmt.columns:
            pieces.append(
                "(" + ", ".join(quote_identifier(c) for c in stmt.columns)
                + ")")
        if stmt.rows is not None:
            rows = ", ".join(
                "(" + ", ".join(render_expr(value) for value in row) + ")"
                for row in stmt.rows)
            pieces.append("VALUES " + rows)
        else:
            pieces.append(render_query(stmt.query))
        return " ".join(pieces)
    if isinstance(stmt, ast.UpdateStmt):
        assignments = ", ".join(
            f"{quote_identifier(column)} = {render_expr(value)}"
            for column, value in stmt.assignments)
        text = f"UPDATE {quote_identifier(stmt.table)} SET {assignments}"
        if stmt.where is not None:
            text += " WHERE " + render_expr(stmt.where)
        return text
    if isinstance(stmt, ast.DeleteStmt):
        text = f"DELETE FROM {quote_identifier(stmt.table)}"
        if stmt.where is not None:
            text += " WHERE " + render_expr(stmt.where)
        return text
    if isinstance(stmt, ast.CreateTableStmt):
        columns = []
        for column in stmt.columns:
            piece = f"{quote_identifier(column.name)} {column.type_name}"
            if column.primary_key:
                piece += " PRIMARY KEY"
            if column.not_null and not column.primary_key:
                piece += " NOT NULL"
            if column.unique:
                piece += " UNIQUE"
            if column.default is not None:
                piece += " DEFAULT " + render_expr(column.default)
            columns.append(piece)
        exists = "IF NOT EXISTS " if stmt.if_not_exists else ""
        return (f"CREATE TABLE {exists}{quote_identifier(stmt.name)} "
                f"({', '.join(columns)})")
    if isinstance(stmt, ast.DropTableStmt):
        exists = "IF EXISTS " if stmt.if_exists else ""
        return f"DROP TABLE {exists}{quote_identifier(stmt.name)}"
    if isinstance(stmt, ast.CreateIndexStmt):
        unique = "UNIQUE " if stmt.unique else ""
        columns = ", ".join(quote_identifier(c) for c in stmt.columns)
        text = (f"CREATE {unique}INDEX {quote_identifier(stmt.name)} "
                f"ON {quote_identifier(stmt.table)} ({columns})")
        if stmt.kind != "hash":
            text += f" USING {stmt.kind}"
        return text
    if isinstance(stmt, ast.DropIndexStmt):
        exists = "IF EXISTS " if stmt.if_exists else ""
        return f"DROP INDEX {exists}{quote_identifier(stmt.name)}"
    if isinstance(stmt, ast.AnalyzeStmt):
        if stmt.table is None:
            return "ANALYZE"
        return f"ANALYZE {quote_identifier(stmt.table)}"
    raise NotSupportedError(f"cannot render {type(stmt).__name__}")
