"""Typed column vectors and vectorized predicate kernels.

This module is the storage half and the expression half of the columnar
execution path:

* :class:`ColumnVector` holds one table column — a plain Python list of
  values (``None`` marks NULL) plus a byte-per-slot null bitmap.  The
  declared type still matters even though values stay boxed: ``Table``
  coerces on insert, so every non-NULL entry of a column belongs to a
  single type family (``int`` for INTEGER, ``float`` for REAL, ``str``
  for TEXT, ``bool`` for BOOLEAN).  That homogeneity is what lets the
  kernels below use raw ``<`` / ``==`` in list comprehensions instead of
  the per-value dispatch of :func:`repro.relational.types.compare_values`.
  (A typed ``array('q'/'d')`` representation was measured and rejected:
  scans re-box every element on the way out, which made full-table reads
  *slower* than a plain list while only helping workloads we don't have.)

* :func:`compile_filter_kernel` turns a simple WHERE conjunct —
  comparisons, AND/OR/NOT, IS [NOT] NULL, BETWEEN, IN (literal list),
  LIKE — over column refs and constants into a *kernel*: a function from
  the full column lists of a batch to a boolean selection mask.  Masks
  use **strict-true** semantics: a slot is ``True`` only when the
  predicate is definitely TRUE under SQL three-valued logic, which is
  exactly the set of rows WHERE keeps.  Strict-true masks compose under
  AND/OR with plain ``and`` / ``or``; NOT is handled by pushing the
  negation into the tree De-Morgan-style (flipping comparison operators
  and the ``negated`` flags) before compiling, which keeps every leaf
  3VL-exact.  Anything the compiler does not understand returns ``None``
  and the executor falls back to the row-at-a-time predicate for that
  conjunct — a hybrid plan, not an error.
"""

from __future__ import annotations

from itertools import compress
from typing import Any, Callable, Optional

from . import ast
from .compiler import like_match
from .types import DataType

#: A kernel maps the batch's column lists to a strict-true boolean mask.
Kernel = Callable[[list], list]

#: Resolves a ColumnRef to ``(position, DataType)`` in the scanned table,
#: or ``None`` when the ref is not a plain innermost-table column (outer
#: correlation, unknown name) — which sends the conjunct to the row path.
Resolver = Callable[[ast.ColumnRef], Optional[tuple]]


class ColumnVector:
    """One column of a table: boxed values plus a null bitmap.

    ``values[i]`` is the value at slot *i* (``None`` for NULL);
    ``nulls[i]`` mirrors it as ``1``/``0`` so batch consumers that only
    need null-ness can avoid touching the values at all.  Slots are
    append-only between compactions; deletes are tracked by the owning
    ``Table``'s deleted bitmap and erased here via :meth:`rebuild`.
    """

    __slots__ = ("data_type", "values", "nulls", "null_count")

    def __init__(self, data_type: DataType) -> None:
        self.data_type = data_type
        self.values: list = []
        self.nulls = bytearray()
        self.null_count = 0

    def __len__(self) -> int:
        return len(self.values)

    def append(self, value: Any) -> None:
        self.values.append(value)
        if value is None:
            self.nulls.append(1)
            self.null_count += 1
        else:
            self.nulls.append(0)

    def set(self, slot: int, value: Any) -> None:
        """Overwrite one slot (UPDATE), keeping the bitmap consistent."""
        was_null = self.nulls[slot]
        now_null = 1 if value is None else 0
        if was_null != now_null:
            self.nulls[slot] = now_null
            self.null_count += now_null - was_null
        self.values[slot] = value

    def rebuild(self, keep: list) -> None:
        """Compact to the slots where *keep* is truthy (liveness mask)."""
        self.values = list(compress(self.values, keep))
        self.nulls = bytearray(compress(self.nulls, keep))
        self.null_count = self.nulls.count(1)

    def clear(self) -> None:
        self.values = []
        self.nulls = bytearray()
        self.null_count = 0


# ---------------------------------------------------------------------------
# Predicate kernels
# ---------------------------------------------------------------------------

_FLIP = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_SWAP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
_COMPARISONS = frozenset(_FLIP)

_FAMILY = {
    DataType.INTEGER: "num",
    DataType.REAL: "num",
    DataType.TEXT: "str",
    DataType.BOOLEAN: "bool",
}


def _literal_family(value: Any) -> str | None:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "num"
    if isinstance(value, str):
        return "str"
    return None


def _negated(expr: ast.Expr) -> ast.Expr | None:
    """Push one NOT into *expr*, or ``None`` when that isn't exact."""
    if isinstance(expr, ast.UnaryOp) and expr.op.upper() == "NOT":
        return expr.operand
    if isinstance(expr, ast.BinaryOp):
        op = expr.op.upper()
        if expr.op in _FLIP:
            return ast.BinaryOp(_FLIP[expr.op], expr.left, expr.right)
        if op in ("AND", "OR"):
            left = _negated(expr.left)
            right = _negated(expr.right)
            if left is None or right is None:
                return None
            other = "OR" if op == "AND" else "AND"
            return ast.BinaryOp(other, left, right)
        return None
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(expr.operand, not expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(expr.operand, expr.low, expr.high,
                           not expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(expr.operand, expr.items, not expr.negated)
    if isinstance(expr, ast.Like):
        return ast.Like(expr.operand, expr.pattern, not expr.negated)
    if isinstance(expr, ast.Literal):
        if expr.value is True:
            return ast.Literal(False)
        if expr.value is False:
            return ast.Literal(True)
        if expr.value is None:
            return ast.Literal(None)
        return None  # non-boolean literal: the row path raises; fall back
    return None


def _resolved(expr: ast.Expr, resolve: Resolver) -> tuple | None:
    if isinstance(expr, ast.ColumnRef):
        return resolve(expr)
    return None


def _all_false(position: int) -> Kernel:
    return lambda cols: [False] * len(cols[position])


def _col_lit_kernel(op: str, ref: tuple, literal: Any) -> Kernel | None:
    position, data_type = ref
    family = _FAMILY[data_type]
    literal_family = _literal_family(literal)
    if literal_family is None:
        return None
    if literal_family == "null":
        # comparison with NULL is never definitely true
        return _all_false(position)
    if literal_family != family:
        # values_equal across type families is plain False
        if op == "=":
            return _all_false(position)
        if op == "<>":
            return lambda cols: [v is not None for v in cols[position]]
        return None  # ordered cross-family comparison raises on the row path
    p, lit = position, literal
    if op == "=":
        return lambda cols: [v is not None and v == lit for v in cols[p]]
    if op == "<>":
        return lambda cols: [v is not None and v != lit for v in cols[p]]
    if op == "<":
        return lambda cols: [v is not None and v < lit for v in cols[p]]
    if op == ">":
        return lambda cols: [v is not None and v > lit for v in cols[p]]
    # <= / >= are phrased as negated strict comparisons so that NaN —
    # which compare_values treats as equal to everything — stays TRUE
    # here exactly like on the row path.
    if op == "<=":
        return lambda cols: [v is not None and not v > lit for v in cols[p]]
    if op == ">=":
        return lambda cols: [v is not None and not v < lit for v in cols[p]]
    return None


def _col_col_kernel(op: str, left: tuple, right: tuple) -> Kernel | None:
    p1, t1 = left
    p2, t2 = right
    if _FAMILY[t1] != _FAMILY[t2]:
        if op == "=":
            return _all_false(p1)
        if op == "<>":
            return lambda cols: [a is not None and b is not None
                                 for a, b in zip(cols[p1], cols[p2])]
        return None
    if op == "=":
        return lambda cols: [a is not None and b is not None and a == b
                             for a, b in zip(cols[p1], cols[p2])]
    if op == "<>":
        return lambda cols: [a is not None and b is not None and a != b
                             for a, b in zip(cols[p1], cols[p2])]
    if op == "<":
        return lambda cols: [a is not None and b is not None and a < b
                             for a, b in zip(cols[p1], cols[p2])]
    if op == ">":
        return lambda cols: [a is not None and b is not None and a > b
                             for a, b in zip(cols[p1], cols[p2])]
    if op == "<=":
        return lambda cols: [a is not None and b is not None and not a > b
                             for a, b in zip(cols[p1], cols[p2])]
    if op == ">=":
        return lambda cols: [a is not None and b is not None and not a < b
                             for a, b in zip(cols[p1], cols[p2])]
    return None


def _comparison_kernel(expr: ast.BinaryOp, resolve: Resolver) \
        -> Kernel | None:
    left_ref = _resolved(expr.left, resolve)
    right_ref = _resolved(expr.right, resolve)
    if left_ref is not None and right_ref is not None:
        return _col_col_kernel(expr.op, left_ref, right_ref)
    if left_ref is not None and isinstance(expr.right, ast.Literal):
        return _col_lit_kernel(expr.op, left_ref, expr.right.value)
    if right_ref is not None and isinstance(expr.left, ast.Literal):
        return _col_lit_kernel(_SWAP[expr.op], right_ref, expr.left.value)
    return None


def _in_list_kernel(expr: ast.InList, resolve: Resolver) -> Kernel | None:
    ref = _resolved(expr.operand, resolve)
    if ref is None:
        return None
    position, data_type = ref
    family = _FAMILY[data_type]
    candidates = set()
    for item in expr.items:
        if not isinstance(item, ast.Literal):
            return None
        item_family = _literal_family(item.value)
        if item_family is None:
            return None
        if item_family == "null":
            if expr.negated:
                # NOT IN with a NULL item is never definitely true
                return _all_false(position)
            continue  # in IN, a NULL item can only contribute UNKNOWN
        if item_family != family:
            # cross-family equality is always False; the item can never
            # match, and skipping it keeps the set family-pure (so the
            # True == 1 hash collision cannot leak bool/int confusion)
            continue
        candidates.add(item.value)
    p = position
    if expr.negated:
        return lambda cols: [v is not None and v not in candidates
                             for v in cols[p]]
    return lambda cols: [v is not None and v in candidates for v in cols[p]]


def _between_kernel(expr: ast.Between, resolve: Resolver) -> Kernel | None:
    ref = _resolved(expr.operand, resolve)
    if ref is None:
        return None
    if not isinstance(expr.low, ast.Literal) \
            or not isinstance(expr.high, ast.Literal):
        return None
    if expr.negated:
        low = _col_lit_kernel("<", ref, expr.low.value)
        high = _col_lit_kernel(">", ref, expr.high.value)
        if low is None or high is None:
            return None
        return lambda cols: [a or b for a, b in zip(low(cols), high(cols))]
    low = _col_lit_kernel(">=", ref, expr.low.value)
    high = _col_lit_kernel("<=", ref, expr.high.value)
    if low is None or high is None:
        return None
    return lambda cols: [a and b for a, b in zip(low(cols), high(cols))]


def _like_kernel(expr: ast.Like, resolve: Resolver) -> Kernel | None:
    ref = _resolved(expr.operand, resolve)
    if ref is None:
        return None
    position, data_type = ref
    if data_type is not DataType.TEXT:
        return None  # LIKE on non-text raises on the row path
    if not isinstance(expr.pattern, ast.Literal):
        return None
    pattern = expr.pattern.value
    if pattern is None:
        return _all_false(position)
    if not isinstance(pattern, str):
        return None
    p, match = position, like_match
    if expr.negated:
        return lambda cols: [v is not None and match(v, pattern) is False
                             for v in cols[p]]
    return lambda cols: [v is not None and match(v, pattern) is True
                         for v in cols[p]]


def fallback_reason(expr: ast.Expr, resolve: Resolver) -> str | None:
    """Why *expr* has no vector kernel, or ``None`` when it compiles.

    The single source of truth for "would this conjunct vectorize":
    the answer is literally :func:`compile_filter_kernel`'s, so the
    runtime fallback note, ``Database.last_vectorized_fallbacks`` and
    the static analyzer's ``W-VEC-FALLBACK`` diagnostic can never
    disagree about *whether* — this function only adds the *why*.
    """
    if compile_filter_kernel(expr, resolve) is not None:
        return None
    return _describe_fallback(expr, resolve)


def _describe_fallback(expr: ast.Expr, resolve: Resolver) -> str:
    generic = "unsupported predicate shape"
    if isinstance(expr, ast.UnaryOp) and expr.op.upper() == "NOT":
        operand = expr.operand
        if isinstance(operand, ast.ColumnRef):
            ref = resolve(operand)
            if ref is None:
                return "column is not a plain column of the scanned table"
            return "NOT over a non-boolean column"
        pushed = _negated(operand)
        if pushed is None:
            return ("NOT cannot be pushed into "
                    f"{type(operand).__name__} exactly")
        return _describe_fallback(pushed, resolve)
    if isinstance(expr, ast.BinaryOp):
        op = expr.op.upper()
        if op in ("AND", "OR"):
            for side in (expr.left, expr.right):
                if compile_filter_kernel(side, resolve) is None:
                    return _describe_fallback(side, resolve)
            return generic  # pragma: no cover - both sides compiled
        if expr.op in _COMPARISONS:
            left_ref = _resolved(expr.left, resolve)
            right_ref = _resolved(expr.right, resolve)
            if left_ref is not None and right_ref is not None:
                return ("ordered comparison across type families "
                        "(raises on the row path)")
            for ref, other in ((left_ref, expr.right),
                               (right_ref, expr.left)):
                if ref is not None:
                    if isinstance(other, ast.Literal):
                        if _literal_family(other.value) is None:
                            return "comparison with a non-SQL literal"
                        return ("ordered comparison across type "
                                "families (raises on the row path)")
                    return (f"comparison operand is a "
                            f"{type(other).__name__}, not a column or "
                            "literal")
            return ("neither comparison side is a plain column of the "
                    "scanned table")
        return f"operator {expr.op!r} has no vector kernel"
    if isinstance(expr, ast.IsNull):
        return "IS NULL operand is not a plain column"
    if isinstance(expr, ast.Between):
        if _resolved(expr.operand, resolve) is None:
            return "BETWEEN operand is not a plain column"
        return "BETWEEN bounds are not literals"
    if isinstance(expr, ast.InList):
        if _resolved(expr.operand, resolve) is None:
            return "IN operand is not a plain column"
        return "IN list contains non-literal items"
    if isinstance(expr, ast.Like):
        ref = _resolved(expr.operand, resolve)
        if ref is None:
            return "LIKE operand is not a plain column"
        if ref[1] is not DataType.TEXT:
            return "LIKE over a non-text column (raises on the row path)"
        if not isinstance(expr.pattern, ast.Literal):
            return "LIKE pattern is not a literal"
        return "LIKE pattern is not a string"
    if isinstance(expr, ast.Literal):
        return "non-boolean constant predicate (raises on the row path)"
    if isinstance(expr, ast.ColumnRef):
        if resolve(expr) is None:
            return "column is not a plain column of the scanned table"
        return "bare predicate over a non-boolean column"
    if isinstance(expr, ast.FunctionCall):
        return f"function call {expr.name.upper()} has no vector kernel"
    if isinstance(expr, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
        return "subquery predicates run on the row path"
    if isinstance(expr, ast.CaseExpr):
        return "CASE expressions run on the row path"
    if isinstance(expr, ast.Cast):
        return "CAST expressions run on the row path"
    return generic


def compile_filter_kernel(expr: ast.Expr, resolve: Resolver) \
        -> Kernel | None:
    """Compile *expr* to a strict-true mask kernel, or ``None``.

    ``None`` means "not vectorizable" — the caller keeps the conjunct on
    the row path.  It is never an error: every supported construct is
    compiled to match the row path's three-valued semantics exactly.
    """
    if isinstance(expr, ast.UnaryOp) and expr.op.upper() == "NOT":
        operand = expr.operand
        if isinstance(operand, ast.ColumnRef):
            # NOT b over a BOOLEAN column (non-boolean raises on the
            # row path, so only that family vectorizes)
            ref = resolve(operand)
            if ref is None or _FAMILY[ref[1]] != "bool":
                return None
            position = ref[0]
            return lambda cols: [v is False for v in cols[position]]
        pushed = _negated(operand)
        if pushed is None:
            return None
        return compile_filter_kernel(pushed, resolve)
    if isinstance(expr, ast.BinaryOp):
        op = expr.op.upper()
        if op in ("AND", "OR"):
            left = compile_filter_kernel(expr.left, resolve)
            if left is None:
                return None
            right = compile_filter_kernel(expr.right, resolve)
            if right is None:
                return None
            if op == "AND":
                return lambda cols: [a and b
                                     for a, b in zip(left(cols), right(cols))]
            return lambda cols: [a or b
                                 for a, b in zip(left(cols), right(cols))]
        if expr.op in _COMPARISONS:
            return _comparison_kernel(expr, resolve)
        return None
    if isinstance(expr, ast.IsNull):
        ref = _resolved(expr.operand, resolve)
        if ref is None:
            return None
        position = ref[0]
        if expr.negated:
            return lambda cols: [v is not None for v in cols[position]]
        return lambda cols: [v is None for v in cols[position]]
    if isinstance(expr, ast.Between):
        return _between_kernel(expr, resolve)
    if isinstance(expr, ast.InList):
        return _in_list_kernel(expr, resolve)
    if isinstance(expr, ast.Like):
        return _like_kernel(expr, resolve)
    if isinstance(expr, ast.Literal):
        if expr.value is True:
            return lambda cols: [True] * len(cols[0])
        if expr.value is False or expr.value is None:
            return lambda cols: [False] * len(cols[0])
        return None
    if isinstance(expr, ast.ColumnRef):
        # WHERE b over a BOOLEAN column; any other family raises on the
        # row path, so it falls back
        ref = resolve(expr)
        if ref is None or _FAMILY[ref[1]] != "bool":
            return None
        position = ref[0]
        return lambda cols: [v is True for v in cols[position]]
    return None
