"""Scalar function registry for the SQL engine.

All functions follow SQL NULL propagation (a NULL argument yields NULL)
unless documented otherwise (``COALESCE``, ``IFNULL``).
"""

from __future__ import annotations

import math
from typing import Any, Callable

from .errors import ExecutionError, TypeMismatchError
from .types import format_value


def _require_text(value: Any, function_name: str) -> str:
    if not isinstance(value, str):
        raise TypeMismatchError(
            f"{function_name} expects TEXT, got {type(value).__name__}")
    return value


def _require_number(value: Any, function_name: str) -> float | int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeMismatchError(
            f"{function_name} expects a number, got {type(value).__name__}")
    return value


def _null_propagating(function: Callable[..., Any]) -> Callable[..., Any]:
    def wrapper(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return function(*args)
    return wrapper


def _fn_upper(value: Any) -> Any:
    return _require_text(value, "UPPER").upper()


def _fn_lower(value: Any) -> Any:
    return _require_text(value, "LOWER").lower()


def _fn_length(value: Any) -> Any:
    return len(_require_text(value, "LENGTH"))


def _fn_abs(value: Any) -> Any:
    return abs(_require_number(value, "ABS"))


def _fn_round(value: Any, digits: Any = 0) -> Any:
    number = _require_number(value, "ROUND")
    places = int(_require_number(digits, "ROUND"))
    result = round(float(number), places)
    if places <= 0:
        return float(result) if isinstance(number, float) else int(result)
    return result


def _fn_floor(value: Any) -> Any:
    return int(math.floor(_require_number(value, "FLOOR")))


def _fn_ceil(value: Any) -> Any:
    return int(math.ceil(_require_number(value, "CEIL")))


def _fn_sqrt(value: Any) -> Any:
    number = _require_number(value, "SQRT")
    if number < 0:
        raise ExecutionError("SQRT of a negative number")
    return math.sqrt(number)


def _fn_power(base: Any, exponent: Any) -> Any:
    return float(_require_number(base, "POWER")) ** float(
        _require_number(exponent, "POWER"))


def _fn_sign(value: Any) -> Any:
    number = _require_number(value, "SIGN")
    if number > 0:
        return 1
    if number < 0:
        return -1
    return 0


def _fn_mod(left: Any, right: Any) -> Any:
    divisor = _require_number(right, "MOD")
    if divisor == 0:
        raise ExecutionError("MOD by zero")
    return math.fmod(_require_number(left, "MOD"), divisor)


def _fn_substr(value: Any, start: Any, length: Any = None) -> Any:
    text = _require_text(value, "SUBSTR")
    begin = int(_require_number(start, "SUBSTR"))
    # SQL SUBSTR is 1-based; 0 and negatives clamp like SQLite.
    index = max(begin - 1, 0)
    if length is None:
        return text[index:]
    count = int(_require_number(length, "SUBSTR"))
    if count < 0:
        count = 0
    return text[index:index + count]


def _fn_trim(value: Any) -> Any:
    return _require_text(value, "TRIM").strip()


def _fn_ltrim(value: Any) -> Any:
    return _require_text(value, "LTRIM").lstrip()


def _fn_rtrim(value: Any) -> Any:
    return _require_text(value, "RTRIM").rstrip()


def _fn_replace(value: Any, old: Any, new: Any) -> Any:
    return _require_text(value, "REPLACE").replace(
        _require_text(old, "REPLACE"), _require_text(new, "REPLACE"))


def _fn_instr(value: Any, needle: Any) -> Any:
    return _require_text(value, "INSTR").find(
        _require_text(needle, "INSTR")) + 1


def _fn_concat(*args: Any) -> Any:
    return "".join(
        arg if isinstance(arg, str) else format_value(arg) for arg in args)


def _fn_typeof(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "real"
    return "text"


def _fn_coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _fn_ifnull(value: Any, fallback: Any) -> Any:
    return value if value is not None else fallback


def _fn_nullif(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return left
    return None if left == right else left


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "UPPER": _null_propagating(_fn_upper),
    "LOWER": _null_propagating(_fn_lower),
    "LENGTH": _null_propagating(_fn_length),
    "ABS": _null_propagating(_fn_abs),
    "ROUND": _null_propagating(_fn_round),
    "FLOOR": _null_propagating(_fn_floor),
    "CEIL": _null_propagating(_fn_ceil),
    "CEILING": _null_propagating(_fn_ceil),
    "SQRT": _null_propagating(_fn_sqrt),
    "POWER": _null_propagating(_fn_power),
    "SIGN": _null_propagating(_fn_sign),
    "MOD": _null_propagating(_fn_mod),
    "SUBSTR": _null_propagating(_fn_substr),
    "SUBSTRING": _null_propagating(_fn_substr),
    "TRIM": _null_propagating(_fn_trim),
    "LTRIM": _null_propagating(_fn_ltrim),
    "RTRIM": _null_propagating(_fn_rtrim),
    "REPLACE": _null_propagating(_fn_replace),
    "INSTR": _null_propagating(_fn_instr),
    "CONCAT": _null_propagating(_fn_concat),
    "TYPEOF": _fn_typeof,
    "COALESCE": _fn_coalesce,
    "IFNULL": _fn_ifnull,
    "NULLIF": _fn_nullif,
}

_ARITY: dict[str, tuple[int, int | None]] = {
    "UPPER": (1, 1), "LOWER": (1, 1), "LENGTH": (1, 1), "ABS": (1, 1),
    "ROUND": (1, 2), "FLOOR": (1, 1), "CEIL": (1, 1), "CEILING": (1, 1),
    "SQRT": (1, 1), "POWER": (2, 2), "SIGN": (1, 1), "MOD": (2, 2),
    "SUBSTR": (2, 3), "SUBSTRING": (2, 3), "TRIM": (1, 1), "LTRIM": (1, 1),
    "RTRIM": (1, 1), "REPLACE": (3, 3), "INSTR": (2, 2),
    "CONCAT": (1, None), "TYPEOF": (1, 1), "COALESCE": (1, None),
    "IFNULL": (2, 2), "NULLIF": (2, 2),
}


def lookup_function(name: str, arg_count: int) -> Callable[..., Any]:
    """Find a scalar function by name, validating arity."""
    upper = name.upper()
    if upper not in SCALAR_FUNCTIONS:
        raise ExecutionError(f"unknown function {name!r}")
    minimum, maximum = _ARITY[upper]
    if arg_count < minimum or (maximum is not None and arg_count > maximum):
        raise ExecutionError(
            f"{upper} takes {minimum}"
            + ("" if maximum == minimum else
               f" to {maximum if maximum is not None else 'N'}")
            + f" arguments, got {arg_count}")
    return SCALAR_FUNCTIONS[upper]
