"""CSV import/export for databank tables.

The SmartGround platform collects landfill data from partner
institutions; CSV is the exchange format such databanks actually move.
``load_csv`` creates (or appends to) a table from CSV text with type
inference; ``dump_csv`` writes any query result or table back out.
"""

from __future__ import annotations

import csv
import io
from typing import Any

from .engine import Database
from .errors import RelationalError
from .result import ResultSet
from .schema import Column
from .types import DataType, infer_type


def _infer_value(text: str) -> Any:
    """Type inference for one non-NULL cell (int > float > bool > text)."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _parse_cell(text: str) -> Any:
    if text == "":
        return None
    return _infer_value(text)


def _check_null_marker(null_marker: str | None) -> None:
    if null_marker is not None and (not null_marker
                                    or not null_marker.startswith("\\")):
        raise RelationalError(
            f"null_marker must start with a backslash, got "
            f"{null_marker!r}")


def _decode_cell(cell: str, null_marker: str | None) -> str | None:
    """Undo NULL marking/escaping; returns the raw text or None.

    Without a marker the legacy convention applies (empty cell = NULL,
    so an empty *string* is indistinguishable from NULL — the reason
    snapshots always pass one).  With a marker, NULL is exactly the
    marker, a leading backslash is an escape, and the empty string
    round-trips as itself.
    """
    if null_marker is None:
        return None if cell == "" else cell
    if cell == null_marker:
        return None
    if cell.startswith("\\"):
        return cell[1:]
    return cell


def _typed_value(text: str, data_type: DataType | None) -> Any:
    """Parse a non-NULL cell against a known column type.

    TEXT keeps the raw characters — ``"1.00"`` in a TEXT column must
    not silently become ``1.0`` — and numeric parses fall back to
    inference (schema coercion then reports any real mismatch).
    """
    if data_type is DataType.TEXT:
        return text
    try:
        if data_type is DataType.INTEGER:
            return int(text)
        if data_type is DataType.REAL:
            return float(text)
    except ValueError:
        return _infer_value(text)
    if data_type is DataType.BOOLEAN and text.lower() in ("true", "false"):
        return text.lower() == "true"
    return _infer_value(text)


def _infer_column(values: list[Any]) -> DataType:
    chosen: DataType | None = None
    for value in values:
        if value is None:
            continue
        inferred = infer_type(value)
        if chosen is None:
            chosen = inferred
        elif chosen is not inferred:
            if {chosen, inferred} == {DataType.INTEGER, DataType.REAL}:
                chosen = DataType.REAL
            else:
                return DataType.TEXT
    return chosen or DataType.TEXT


def load_csv(db: Database, table_name: str, text: str,
             create: bool = True, *,
             null_marker: str | None = None) -> int:
    """Load CSV text (header row required) into *table_name*.

    With ``create=True`` the table is created with inferred column
    types; otherwise rows append to the existing table — parsed against
    its **declared** column types, so a TEXT cell that merely looks
    numeric (``"1.00"``) is not silently widened to ``1.0``.

    *null_marker* (e.g. ``"\\\\N"``) distinguishes NULL from the empty
    string: NULL dumps as the marker, a string cell starting with a
    backslash is escaped with one more, and the empty string
    round-trips as itself.  Without it the legacy convention applies
    (empty cell = NULL).  Returns the number of rows inserted.
    """
    _check_null_marker(null_marker)
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise RelationalError("CSV input has no header row") from None
    types: list[DataType | None] | None = None
    if not create and db.catalog.has_table(table_name):
        schema = db.table(table_name).schema
        types = [schema.column(name).data_type
                 if schema.has_column(name) else None
                 for name in header]
    rows: list[list[Any]] = []
    for raw in reader:
        if not raw:
            continue
        if len(raw) != len(header):
            raise RelationalError(
                f"CSV row has {len(raw)} fields, expected {len(header)}")
        row: list[Any] = []
        for index, cell in enumerate(raw):
            decoded = _decode_cell(cell, null_marker)
            if decoded is None:
                row.append(None)
            elif types is not None:
                row.append(_typed_value(decoded, types[index]))
            else:
                row.append(_infer_value(decoded))
        rows.append(row)
    if create:
        columns = []
        for index, name in enumerate(header):
            values = [row[index] for row in rows]
            columns.append(Column(name, _infer_column(values)))
        db.create_table(table_name, columns)
    # Through the bulk helper: write-locked, stats maintained, and the
    # mutation generation bumped so fragment caches see the append.
    return db.insert_rows(
        table_name, (dict(zip(header, row)) for row in rows))


def load_csv_file(db: Database, table_name: str, path: str,
                  create: bool = True, *,
                  null_marker: str | None = None) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        return load_csv(db, table_name, handle.read(), create,
                        null_marker=null_marker)


def _format_cell(value: Any, null_marker: str | None = None) -> str:
    if value is None:
        return null_marker if null_marker is not None else ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if null_marker is not None and isinstance(value, str) \
            and value.startswith("\\"):
        return "\\" + value
    return str(value)


class _SafeWriter:
    """``csv.writer`` with ``\\n`` row endings that still quotes bare
    carriage returns.

    QUOTE_MINIMAL only quotes cells containing the delimiter, the quote
    char or a *lineterminator* character — so with ``\\n`` endings a
    cell holding a lone ``\\r`` is written unquoted, and the reader
    then rejects the row ("new-line character seen in unquoted field").
    Rows with a ``\\r`` anywhere fall back to QUOTE_ALL.
    """

    def __init__(self, buffer: io.StringIO) -> None:
        self._minimal = csv.writer(buffer, lineterminator="\n")
        self._quote_all = csv.writer(buffer, lineterminator="\n",
                                     quoting=csv.QUOTE_ALL)

    def writerow(self, cells: list) -> None:
        writer = self._quote_all if any(
            isinstance(cell, str) and "\r" in cell
            for cell in cells) else self._minimal
        writer.writerow(cells)


def dump_csv(source: Database | ResultSet,
             table_or_sql: str | None = None, *,
             null_marker: str | None = None) -> str:
    """Serialize a table, a query, or a ResultSet to CSV text.

    With *null_marker* the output distinguishes NULL from the empty
    string (see :func:`load_csv`); snapshots rely on this."""
    _check_null_marker(null_marker)
    if isinstance(source, ResultSet):
        result = source
    else:
        if table_or_sql is None:
            raise RelationalError("dump_csv needs a table name or SQL")
        if table_or_sql.strip().upper().startswith("SELECT"):
            result = source.query(table_or_sql)
        else:
            result = source.query(f"SELECT * FROM {table_or_sql}")
    buffer = io.StringIO()
    writer = _SafeWriter(buffer)
    writer.writerow(result.columns)
    for row in result.rows:
        writer.writerow([_format_cell(value, null_marker)
                         for value in row])
    return buffer.getvalue()


def rows_to_csv(columns: list[str], rows, *,
                null_marker: str | None = None) -> str:
    """Serialize raw row tuples (no query surface) — the snapshot codec."""
    _check_null_marker(null_marker)
    buffer = io.StringIO()
    writer = _SafeWriter(buffer)
    writer.writerow(columns)
    for row in rows:
        writer.writerow([_format_cell(value, null_marker)
                         for value in row])
    return buffer.getvalue()


def dump_csv_file(source: Database | ResultSet, path: str,
                  table_or_sql: str | None = None, *,
                  null_marker: str | None = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_csv(source, table_or_sql,
                              null_marker=null_marker))
