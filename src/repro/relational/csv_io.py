"""CSV import/export for databank tables.

The SmartGround platform collects landfill data from partner
institutions; CSV is the exchange format such databanks actually move.
``load_csv`` creates (or appends to) a table from CSV text with type
inference; ``dump_csv`` writes any query result or table back out.
"""

from __future__ import annotations

import csv
import io
from typing import Any

from .engine import Database
from .errors import RelationalError
from .result import ResultSet
from .schema import Column
from .types import DataType, infer_type


def _parse_cell(text: str) -> Any:
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _infer_column(values: list[Any]) -> DataType:
    chosen: DataType | None = None
    for value in values:
        if value is None:
            continue
        inferred = infer_type(value)
        if chosen is None:
            chosen = inferred
        elif chosen is not inferred:
            if {chosen, inferred} == {DataType.INTEGER, DataType.REAL}:
                chosen = DataType.REAL
            else:
                return DataType.TEXT
    return chosen or DataType.TEXT


def load_csv(db: Database, table_name: str, text: str,
             create: bool = True) -> int:
    """Load CSV text (header row required) into *table_name*.

    With ``create=True`` the table is created with inferred column
    types; otherwise rows append to the existing table (whose schema
    coerces them). Returns the number of rows inserted.
    """
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise RelationalError("CSV input has no header row") from None
    rows: list[list[Any]] = []
    for raw in reader:
        if not raw:
            continue
        if len(raw) != len(header):
            raise RelationalError(
                f"CSV row has {len(raw)} fields, expected {len(header)}")
        rows.append([_parse_cell(cell) for cell in raw])
    if create:
        columns = []
        for index, name in enumerate(header):
            values = [row[index] for row in rows]
            columns.append(Column(name, _infer_column(values)))
        db.create_table(table_name, columns)
    # Through the bulk helper: write-locked, stats maintained, and the
    # mutation generation bumped so fragment caches see the append.
    return db.insert_rows(
        table_name, (dict(zip(header, row)) for row in rows))


def load_csv_file(db: Database, table_name: str, path: str,
                  create: bool = True) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        return load_csv(db, table_name, handle.read(), create)


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def dump_csv(source: Database | ResultSet,
             table_or_sql: str | None = None) -> str:
    """Serialize a table, a query, or a ResultSet to CSV text."""
    if isinstance(source, ResultSet):
        result = source
    else:
        if table_or_sql is None:
            raise RelationalError("dump_csv needs a table name or SQL")
        if table_or_sql.strip().upper().startswith("SELECT"):
            result = source.query(table_or_sql)
        else:
            result = source.query(f"SELECT * FROM {table_or_sql}")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(result.columns)
    for row in result.rows:
        writer.writerow([_format_cell(value) for value in row])
    return buffer.getvalue()


def dump_csv_file(source: Database | ResultSet, path: str,
                  table_or_sql: str | None = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_csv(source, table_or_sql))
