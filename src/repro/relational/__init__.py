"""From-scratch in-memory relational engine (the PostgreSQL stand-in).

Public surface:

* :class:`Database` — SQL front end (``execute``/``query``/``execute_script``)
* :class:`ResultSet` — query results
* :func:`parse_sql` / :func:`parse_expr` — SQL parsing (used by SESQL)
* :mod:`~repro.relational.ast` / :mod:`~repro.relational.render` — AST
  construction and SQL rendering for programmatic query building
"""

from .engine import Database, column
from .errors import (AmbiguousColumnError, CatalogError, ConstraintViolation,
                     ExecutionError, NotSupportedError, RelationalError,
                     SchemaError, SqlSyntaxError, TypeMismatchError,
                     UnknownColumnError)
from .parser import parse_expr, parse_script, parse_sql
from .render import render_expr, render_query, render_statement
from .result import Cursor, ResultSet
from .schema import Column, TableSchema
from .types import DataType

__all__ = [
    "Database", "column", "ResultSet", "Cursor", "Column", "TableSchema",
    "DataType",
    "parse_sql", "parse_script", "parse_expr",
    "render_expr", "render_query", "render_statement",
    "RelationalError", "SqlSyntaxError", "CatalogError", "SchemaError",
    "AmbiguousColumnError", "UnknownColumnError", "TypeMismatchError",
    "ConstraintViolation", "NotSupportedError", "ExecutionError",
]
