"""Expression compilation: AST -> Python closures.

Expressions are compiled once per (sub)query against a *scope chain*: a
list of :class:`~repro.relational.schema.RowSchema` objects, outermost
first.  The compiled closure receives a parallel tuple of row tuples and
returns the SQL value, honouring three-valued logic.

Correlated subqueries are supported through the scope chain: a column
that does not resolve in the innermost scope is looked up outwards.  The
:class:`CompileContext` tracks which scope depths were referenced so the
executor can detect (and cache) uncorrelated subqueries.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, Protocol

from . import ast
from .errors import (AmbiguousColumnError, ExecutionError, NotSupportedError,
                     TypeMismatchError, UnknownColumnError)
from .functions import lookup_function
from .aggregates import AGGREGATE_NAMES
from .schema import RowSchema
from .types import (and3, coerce_value, compare_values, format_value, is_true,
                    not3, or3, parse_type_name, values_equal)

Rows = tuple
CompiledExpr = Callable[[Rows], Any]


class SubPlanLike(Protocol):
    """What compiled expressions need from a subquery plan."""

    def scalar(self, outer_rows: Rows) -> Any: ...

    def exists(self, outer_rows: Rows) -> bool: ...

    def column_values(self, outer_rows: Rows) -> list[Any]: ...


class CompileContext:
    """Compilation state shared across a query tree.

    ``subplan_factory`` is injected by the executor (it owns query
    planning); the compiler only knows the :class:`SubPlanLike` protocol.

    ``planned`` optionally carries the cost-based plan
    (:class:`repro.planner.plan.PlannedStatement`) for the statement
    being compiled: the executor consults it for per-node physical
    strategy decisions and — when the plan asks to be instrumented —
    wires row counters onto the matching operators.
    """

    def __init__(self, subplan_factory: Callable[..., SubPlanLike],
                 planned=None, vectorize: bool = True,
                 exec_hooks=None) -> None:
        self.subplan_factory = subplan_factory
        self.planned = planned
        #: Whether the executor may compile batch-at-a-time operators.
        self.vectorize = vectorize
        #: Duck-typed telemetry hooks for vectorized operators (see
        #: :class:`repro.relational.batch.ExecHooks`), or ``None``.
        self.exec_hooks = exec_hooks
        #: Operator kinds ("scan", "filter", "project", "aggregate")
        #: that compiled to the vectorized path anywhere in the tree.
        self.vectorized_ops: set[str] = set()
        #: ``(expression, reason)`` pairs for WHERE conjuncts that fell
        #: back to the row path during an otherwise vectorized scan —
        #: the runtime counterpart of the analyzer's ``W-VEC-FALLBACK``.
        self.vectorized_fallbacks: list[tuple[str, str]] = []
        self._watchers: list[set[int]] = []

    def note_vectorized(self, op: str) -> None:
        self.vectorized_ops.add(op)

    def note_fallback(self, expression: str, reason: str) -> None:
        entry = (expression, reason)
        if entry not in self.vectorized_fallbacks:
            self.vectorized_fallbacks.append(entry)

    def plan_node(self, ast_node):
        """The planner's operator node for *ast_node* (or ``None``)."""
        if self.planned is None:
            return None
        return self.planned.annotations.get(id(ast_node))

    def agg_node(self, ast_node):
        """The planner's aggregate node for a SELECT core, if any.

        Aggregate nodes cannot share the ``annotations`` key with the
        core's filter node (both hang off the same AST node), so the
        planner records them in a separate map."""
        if self.planned is None:
            return None
        return getattr(self.planned, "agg_annotations", {}).get(id(ast_node))

    def counter_for(self, ast_node):
        """Like :meth:`plan_node`, but only when the plan is being
        instrumented (EXPLAIN ANALYZE) — keeps the hot path free of
        per-row counting otherwise."""
        if self.planned is None or not getattr(self.planned,
                                               "instrument", False):
            return None
        return self.planned.annotations.get(id(ast_node))

    def push_watcher(self) -> set[int]:
        watcher: set[int] = set()
        self._watchers.append(watcher)
        return watcher

    def pop_watcher(self) -> set[int]:
        return self._watchers.pop()

    def mark_reference(self, depth: int) -> None:
        for watcher in self._watchers:
            watcher.add(depth)


def resolve_column(ref: ast.ColumnRef, scopes: list[RowSchema],
                   ctx: CompileContext | None = None) -> tuple[int, int]:
    """Resolve a column reference to (scope depth, position)."""
    for depth in range(len(scopes) - 1, -1, -1):
        matches = scopes[depth].find(ref.name, ref.qualifier)
        if len(matches) > 1:
            raise AmbiguousColumnError(
                f"column reference {ref.display()!r} is ambiguous")
        if matches:
            if ctx is not None:
                ctx.mark_reference(depth)
            return depth, matches[0]
    raise UnknownColumnError(f"no such column: {ref.display()!r}")


# ---------------------------------------------------------------------------
# Operator semantics
# ---------------------------------------------------------------------------

def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _numeric(op: str, value: Any) -> Any:
    if not _is_number(value):
        raise TypeMismatchError(
            f"operator {op} expects numbers, got {type(value).__name__}")
    return value


def arithmetic(op: str, left: Any, right: Any) -> Any:
    """NULL-propagating SQL arithmetic with PostgreSQL-style division."""
    if left is None or right is None:
        return None
    if op == "||":
        left_text = left if isinstance(left, str) else format_value(left)
        right_text = right if isinstance(right, str) else format_value(right)
        return left_text + right_text
    _numeric(op, left)
    _numeric(op, right)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            return int(left / right)  # truncate toward zero, like PostgreSQL
        return left / right
    if op == "%":
        if right == 0:
            raise ExecutionError("modulo by zero")
        result = math.fmod(left, right)
        if isinstance(left, int) and isinstance(right, int):
            return int(result)
        return result
    raise NotSupportedError(f"unknown arithmetic operator {op!r}")


def comparison(op: str, left: Any, right: Any) -> bool | None:
    """Three-valued comparison dispatch."""
    if op == "=":
        return values_equal(left, right)
    if op == "<>":
        return not3(values_equal(left, right))
    result = compare_values(left, right)
    if result is None:
        return None
    if op == "<":
        return result < 0
    if op == "<=":
        return result <= 0
    if op == ">":
        return result > 0
    if op == ">=":
        return result >= 0
    raise NotSupportedError(f"unknown comparison operator {op!r}")


_LIKE_CACHE: dict[str, re.Pattern] = {}


def like_match(value: Any, pattern: Any) -> bool | None:
    """SQL LIKE with %/_ wildcards; NULL operands yield unknown."""
    if value is None or pattern is None:
        return None
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise TypeMismatchError("LIKE expects TEXT operands")
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        pieces = ["^"]
        for char in pattern:
            if char == "%":
                pieces.append(".*")
            elif char == "_":
                pieces.append(".")
            else:
                pieces.append(re.escape(char))
        pieces.append("$")
        compiled = re.compile("".join(pieces), re.DOTALL)
        if len(_LIKE_CACHE) < 1024:
            _LIKE_CACHE[pattern] = compiled
    return compiled.match(value) is not None


def membership(value: Any, candidates: list[Any]) -> bool | None:
    """3VL semantics of ``value IN (candidates)``."""
    saw_unknown = False
    for candidate in candidates:
        result = values_equal(value, candidate)
        if result is True:
            return True
        if result is None:
            saw_unknown = True
    if saw_unknown:
        return None
    return False


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

def compile_expr(expr: ast.Expr, scopes: list[RowSchema],
                 ctx: CompileContext) -> CompiledExpr:
    """Compile an expression against a scope chain."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda rows: value

    if isinstance(expr, ast.ColumnRef):
        depth, position = resolve_column(expr, scopes, ctx)
        return lambda rows: rows[depth][position]

    if isinstance(expr, ast.SlotRef):
        index = expr.index
        return lambda rows: rows[-1][index]

    if isinstance(expr, ast.UnaryOp):
        operand = compile_expr(expr.operand, scopes, ctx)
        if expr.op == "NOT":
            return lambda rows: not3(operand(rows))
        if expr.op == "-":
            def negate(rows: Rows) -> Any:
                value = operand(rows)
                if value is None:
                    return None
                return -_numeric("-", value)
            return negate
        if expr.op == "+":
            def positive(rows: Rows) -> Any:
                value = operand(rows)
                if value is None:
                    return None
                return _numeric("+", value)
            return positive
        raise NotSupportedError(f"unknown unary operator {expr.op!r}")

    if isinstance(expr, ast.BinaryOp):
        op = expr.op
        if op == "AND":
            left = compile_expr(expr.left, scopes, ctx)
            right = compile_expr(expr.right, scopes, ctx)

            def and_eval(rows: Rows) -> bool | None:
                left_value = _truth(left(rows))
                if left_value is False:
                    return False
                return and3(left_value, _truth(right(rows)))
            return and_eval
        if op == "OR":
            left = compile_expr(expr.left, scopes, ctx)
            right = compile_expr(expr.right, scopes, ctx)

            def or_eval(rows: Rows) -> bool | None:
                left_value = _truth(left(rows))
                if left_value is True:
                    return True
                return or3(left_value, _truth(right(rows)))
            return or_eval
        left = compile_expr(expr.left, scopes, ctx)
        right = compile_expr(expr.right, scopes, ctx)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return lambda rows: comparison(op, left(rows), right(rows))
        return lambda rows: arithmetic(op, left(rows), right(rows))

    if isinstance(expr, ast.IsNull):
        operand = compile_expr(expr.operand, scopes, ctx)
        if expr.negated:
            return lambda rows: operand(rows) is not None
        return lambda rows: operand(rows) is None

    if isinstance(expr, ast.Like):
        operand = compile_expr(expr.operand, scopes, ctx)
        pattern = compile_expr(expr.pattern, scopes, ctx)
        if expr.negated:
            return lambda rows: not3(like_match(operand(rows), pattern(rows)))
        return lambda rows: like_match(operand(rows), pattern(rows))

    if isinstance(expr, ast.Between):
        operand = compile_expr(expr.operand, scopes, ctx)
        low = compile_expr(expr.low, scopes, ctx)
        high = compile_expr(expr.high, scopes, ctx)

        def between(rows: Rows) -> bool | None:
            value = operand(rows)
            result = and3(comparison(">=", value, low(rows)),
                          comparison("<=", value, high(rows)))
            return result
        if expr.negated:
            return lambda rows: not3(between(rows))
        return between

    if isinstance(expr, ast.InList):
        operand = compile_expr(expr.operand, scopes, ctx)
        items = [compile_expr(item, scopes, ctx) for item in expr.items]

        def in_list(rows: Rows) -> bool | None:
            return membership(operand(rows), [item(rows) for item in items])
        if expr.negated:
            return lambda rows: not3(in_list(rows))
        return in_list

    if isinstance(expr, ast.InSubquery):
        operand = compile_expr(expr.operand, scopes, ctx)
        plan = ctx.subplan_factory(expr.query, scopes)

        def in_subquery(rows: Rows) -> bool | None:
            return membership(operand(rows), plan.column_values(rows))
        if expr.negated:
            return lambda rows: not3(in_subquery(rows))
        return in_subquery

    if isinstance(expr, ast.Exists):
        plan = ctx.subplan_factory(expr.query, scopes)
        if expr.negated:
            return lambda rows: not plan.exists(rows)
        return lambda rows: plan.exists(rows)

    if isinstance(expr, ast.ScalarSubquery):
        plan = ctx.subplan_factory(expr.query, scopes)
        return lambda rows: plan.scalar(rows)

    if isinstance(expr, ast.FunctionCall):
        if expr.name.upper() in AGGREGATE_NAMES:
            raise ExecutionError(
                f"aggregate {expr.name.upper()} is not allowed here")
        function = lookup_function(expr.name, len(expr.args))
        args = [compile_expr(arg, scopes, ctx) for arg in expr.args]
        return lambda rows: function(*[arg(rows) for arg in args])

    if isinstance(expr, ast.CaseExpr):
        whens = [(compile_expr(condition, scopes, ctx),
                  compile_expr(result, scopes, ctx))
                 for condition, result in expr.whens]
        else_fn = (compile_expr(expr.else_result, scopes, ctx)
                   if expr.else_result is not None else None)
        if expr.operand is None:
            def searched_case(rows: Rows) -> Any:
                for condition, result in whens:
                    if is_true(_truth(condition(rows))):
                        return result(rows)
                return else_fn(rows) if else_fn else None
            return searched_case
        operand = compile_expr(expr.operand, scopes, ctx)

        def simple_case(rows: Rows) -> Any:
            subject = operand(rows)
            for condition, result in whens:
                if is_true(values_equal(subject, condition(rows))):
                    return result(rows)
            return else_fn(rows) if else_fn else None
        return simple_case

    if isinstance(expr, ast.Cast):
        target = parse_type_name(expr.type_name)
        operand = compile_expr(expr.operand, scopes, ctx)
        return lambda rows: coerce_value(operand(rows), target)

    if isinstance(expr, ast.Star):
        raise ExecutionError("'*' is only valid in a SELECT list")

    raise NotSupportedError(
        f"cannot compile {type(expr).__name__} expression")


def _truth(value: Any) -> bool | None:
    """Interpret a value in boolean context (non-boolean -> error)."""
    if value is None or isinstance(value, bool):
        return value
    raise TypeMismatchError(
        f"expected a boolean condition, got {type(value).__name__}")


def compile_predicate(expr: ast.Expr, scopes: list[RowSchema],
                      ctx: CompileContext) -> Callable[[Rows], bool]:
    """Compile a WHERE/ON/HAVING predicate to a strict boolean test."""
    compiled = compile_expr(expr, scopes, ctx)
    return lambda rows: is_true(_truth(compiled(rows)))
