"""Batch-at-a-time execution: the stream unit and its consumers.

The vectorized path moves rows through the executor as *batches* —
either row-tuple chunks (``list[tuple]``) or column batches (a list of
per-column value lists, all the same length).  Batches flatten back to
rows at the ``QueryPlan.stream`` boundary, so cursors, ``/api/v1``
pagination, LIMIT early-termination and ``rows_yielded`` accounting are
untouched.

This module holds the pieces that are independent of the expression
compiler: the batch size, the telemetry hooks, and the vectorized
GROUP BY / aggregate consumer.
"""

from __future__ import annotations

from itertools import repeat
from typing import Any, Iterable, Iterator, Optional

#: Rows per batch.  Large enough to amortize per-batch Python overhead
#: (generator resumption, kernel dispatch), small enough that LIMIT
#: early-termination and pagination stay responsive.
BATCH_SIZE = 2048


class ExecHooks:
    """Duck-typed telemetry hooks for the vectorized operators.

    Mirrors the PR 7 convention: the engine builds one of these only
    when telemetry is attached, holds pre-resolved metric children, and
    the executor guards every call site with a single ``is None`` test.
    """

    __slots__ = ("batch_rows", "_counters", "_counter_family")

    def __init__(self, batch_rows_histogram, vectorized_counter) -> None:
        self.batch_rows = batch_rows_histogram
        self._counter_family = vectorized_counter
        self._counters: dict = {}

    def observe(self, op: str, rows: int) -> None:
        """Record one batch of *rows* rows flowing through operator *op*."""
        self.batch_rows.observe(rows)
        counter = self._counters.get(op)
        if counter is None:
            counter = self._counter_family.labels(op)
            self._counters[op] = counter
        counter.inc(rows)


# ---------------------------------------------------------------------------
# Vectorized GROUP BY / aggregates
# ---------------------------------------------------------------------------

#: One aggregate spec: (kind, argument column position, distinct) where
#: kind is "count*", "count", "sum", "avg", "min" or "max".  The
#: position is ``None`` for "count*".
AggregateSpec = tuple


def run_vector_aggregate(batches: Iterable[list],
                         key_positions: list,
                         specs: list,
                         hooks: Optional[ExecHooks] = None) -> list:
    """Aggregate column *batches* directly into group slot rows.

    Returns ``[key_tuple + (final_0, final_1, ...), ...]`` in first-seen
    group order — exactly the slot rows the row-at-a-time aggregate
    builds, so HAVING / ORDER BY / projection code is shared downstream.

    Accumulation order matches the row path per group (batches arrive in
    row order), so float results are bit-identical: SUM folds ``state +
    value`` left to right from a ``None`` start, AVG accumulates
    ``total + float(value)`` with a separate count, MIN/MAX keep the
    first of ties.  DISTINCT is tracked with per-(spec, group) value
    sets; the specs are pre-validated so every column is type-family
    homogeneous and set membership agrees with ``values_equal``.
    """
    grouped = bool(key_positions)
    single_key = len(key_positions) == 1
    groups: dict = {}
    key_rows: list = []
    prim: list = []       # per spec: primary accumulator list (one per group)
    extra: list = []      # per spec: AVG count list, else None
    seen: list = []       # per spec: DISTINCT value sets, else None
    inits: list = []      # called once per new group: append fresh states

    for kind, _position, distinct in specs:
        acc: list = []
        prim.append(acc)
        if kind == "avg":
            counts: list = []
            extra.append(counts)
            inits.append(lambda a=acc, c=counts: (a.append(0.0),
                                                  c.append(0)))
        elif kind in ("count", "count*"):
            extra.append(None)
            inits.append(lambda a=acc: a.append(0))
        else:
            extra.append(None)
            inits.append(lambda a=acc: a.append(None))
        if distinct and kind in ("count", "sum", "avg"):
            sets: list = []
            seen.append(sets)
            inits.append(lambda s=sets: s.append(set()))
        else:
            # DISTINCT MIN/MAX sees the same extrema; skip the dedup
            seen.append(None)

    def new_group() -> None:
        for init in inits:
            init()

    if not grouped:
        # an aggregate query with no GROUP BY always produces one group,
        # even over zero rows (COUNT(*) -> 0, SUM -> NULL, ...)
        groups[()] = 0
        key_rows.append(())
        new_group()

    for cols in batches:
        n = len(cols[0])
        if hooks is not None:
            hooks.observe("aggregate", n)
        if grouped:
            if single_key:
                keys: Iterator = iter(cols[key_positions[0]])
            else:
                keys = zip(*[cols[p] for p in key_positions])
            gids: list = []
            add_gid = gids.append
            lookup = groups.get
            if single_key:
                for key in keys:
                    gid = lookup(key)
                    if gid is None:
                        gid = len(key_rows)
                        groups[key] = gid
                        key_rows.append((key,))
                        new_group()
                    add_gid(gid)
            else:
                for key in keys:
                    gid = lookup(key)
                    if gid is None:
                        gid = len(key_rows)
                        groups[key] = gid
                        key_rows.append(key)
                        new_group()
                    add_gid(gid)
            gid_source: Optional[list] = gids
        else:
            gid_source = None

        for index, (kind, position, _distinct) in enumerate(specs):
            acc = prim[index]
            if kind == "count*":
                if gid_source is None:
                    acc[0] += n
                else:
                    for gid in gid_source:
                        acc[gid] += 1
                continue
            col = cols[position]
            gids_it = repeat(0) if gid_source is None else gid_source
            sets = seen[index]
            if kind == "count":
                if sets is None:
                    for gid, value in zip(gids_it, col):
                        if value is not None:
                            acc[gid] += 1
                else:
                    for gid, value in zip(gids_it, col):
                        if value is not None:
                            group_seen = sets[gid]
                            if value not in group_seen:
                                group_seen.add(value)
                                acc[gid] += 1
            elif kind == "sum":
                if sets is None:
                    for gid, value in zip(gids_it, col):
                        if value is not None:
                            state = acc[gid]
                            acc[gid] = value if state is None \
                                else state + value
                else:
                    for gid, value in zip(gids_it, col):
                        if value is not None:
                            group_seen = sets[gid]
                            if value not in group_seen:
                                group_seen.add(value)
                                state = acc[gid]
                                acc[gid] = value if state is None \
                                    else state + value
            elif kind == "avg":
                counts = extra[index]
                if sets is None:
                    for gid, value in zip(gids_it, col):
                        if value is not None:
                            acc[gid] += float(value)
                            counts[gid] += 1
                else:
                    for gid, value in zip(gids_it, col):
                        if value is not None:
                            group_seen = sets[gid]
                            if value not in group_seen:
                                group_seen.add(value)
                                acc[gid] += float(value)
                                counts[gid] += 1
            elif kind == "min":
                for gid, value in zip(gids_it, col):
                    if value is not None:
                        best = acc[gid]
                        if best is None or value < best:
                            acc[gid] = value
            else:  # max
                for gid, value in zip(gids_it, col):
                    if value is not None:
                        best = acc[gid]
                        if best is None or value > best:
                            acc[gid] = value

    final_cols: list = []
    for index, (kind, _position, _distinct) in enumerate(specs):
        if kind == "avg":
            final_cols.append([total / count if count else None
                               for total, count in zip(prim[index],
                                                       extra[index])])
        else:
            final_cols.append(prim[index])
    if not final_cols:
        return list(key_rows)
    return [key + finals
            for key, finals in zip(key_rows, zip(*final_cols))]
