"""The :class:`Database` facade: parse, plan and execute SQL statements.

This is the component that stands in for PostgreSQL in the CroSSE
architecture: both the SmartGround databank and the temporary support
database of the SESQL pipeline (Fig. 6) are instances of it.

Every database owns a cost-based planner (:mod:`repro.planner`, on by
default): SELECTs are rewritten — constant folding, predicate pushdown,
projection pruning, join re-ordering with per-join physical strategy —
before compilation, ``ANALYZE`` collects the statistics the estimates
feed on, and ``explain()`` exposes the operator tree with estimated
(and, under ``analyze=True``, actual) row counts.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from typing import Any, Iterable, Iterator

from ..rwlock import RWLock
from . import ast
from .catalog import Catalog
from .compiler import CompileContext, compile_expr
from .errors import ExecutionError, RelationalError, SchemaError
from .executor import _make_context, compile_query
from .parser import parse_script, parse_sql
from .render import render_statement
from .result import Cursor, ResultSet
from .schema import Column, TableSchema
from .table import Table
from .types import DataType, parse_type_name

#: Shared no-op context for disabled-telemetry span sites.
_NOOP = nullcontext()

#: OperatorNode kinds that describe how base data was reached.
_ACCESS_KINDS = frozenset(
    {"scan", "index-join", "hash-join", "nested-loop", "cross-join"})

#: Buckets for the estimated-vs-actual row ratio histogram (1.0 = the
#: planner nailed it; <1 over-estimated; >1 under-estimated).
_RATIO_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.25, 2.0, 4.0, 10.0,
                  100.0)

#: Buckets for the rows-per-batch histogram: powers of four up to the
#: configured BATCH_SIZE, plus headroom for full-column chunks.
_BATCH_BUCKETS = (1, 4, 16, 64, 256, 1024, 2048, 4096, 16384)


class Database:
    """An in-memory relational database with a SQL front end.

    Thread safety: a reader-writer lock serializes mutations (DML, DDL,
    ``ANALYZE``) against statement execution, so any number of threads
    may SELECT — materialized or streaming — concurrently while writers
    get exclusive access.  A streaming cursor holds the read side until
    it is exhausted or closed; a thread must therefore close its open
    cursors before mutating the same database (the lock refuses the
    upgrade instead of deadlocking).
    """

    def __init__(self, name: str = "main", planner=None,
                 vectorized: bool = True) -> None:
        from ..planner import PlannerOptions, StatisticsCatalog
        self.name = name
        self.catalog = Catalog()
        #: Whether SELECT compilation may use the columnar batch path.
        #: Off forces the row-at-a-time executor everywhere (the
        #: equivalence suite and benchmarks compare the two).
        self.vectorized = vectorized
        #: Duck-typed batch-execution telemetry (built when telemetry
        #: attaches; ``None`` keeps the executor hook-free).
        self._exec_hooks = None
        #: Planner feature flags; replace to toggle passes or disable.
        self.planner: "PlannerOptions" = planner or PlannerOptions()
        #: ANALYZE-collected statistics, maintained incrementally on DML.
        self.stats = StatisticsCatalog()
        #: Thread-local storage backing :attr:`last_plan`.
        self._plans = threading.local()
        #: Readers (SELECT / cursors) share; writers (DML/DDL/ANALYZE)
        #: are exclusive.
        self.rwlock = RWLock()
        self._generation = 0
        #: Durability hook (duck-typed): when a
        #: :class:`repro.durability.DurabilityManager` attaches this
        #: database, every durable mutation is logged here.  ANALYZE
        #: and the lock-free SESQL temp-table injection never reach a
        #: logging site, so they are excluded by construction.
        self.durability_journal = None
        #: Telemetry hook (duck-typed, same pattern): when a
        #: :class:`repro.telemetry.Telemetry` bundle attaches, SELECT
        #: execution records latency/row metrics and opens spans under
        #: the current query trace.  ``None`` costs one attribute test.
        self.telemetry = None

    def attach_telemetry(self, telemetry) -> None:
        """Wire a telemetry bundle into this database and its lock."""
        self.telemetry = telemetry
        self.rwlock.attach_telemetry(telemetry)
        if telemetry is None:
            self._exec_hooks = None
            return
        metrics = telemetry.metrics
        from .batch import ExecHooks
        self._exec_hooks = ExecHooks(
            metrics.histogram(
                "repro_exec_batch_rows",
                "Rows per batch flowing through vectorized operators",
                buckets=_BATCH_BUCKETS),
            metrics.counter(
                "repro_exec_vectorized_total",
                "Rows processed by vectorized operators",
                labels=("op",)))
        self._tm_plan_seconds = metrics.histogram(
            "repro_db_plan_seconds",
            "Wall time spent in the cost-based planner",
            labels=("db",)).labels(self.name)
        self._tm_select_seconds = metrics.histogram(
            "repro_db_select_seconds",
            "Wall time of materialized SELECT execution",
            labels=("db",)).labels(self.name)
        self._tm_stream_seconds = metrics.histogram(
            "repro_db_stream_seconds",
            "Open-to-drain lifetime of streaming SELECT cursors",
            labels=("db",)).labels(self.name)
        self._tm_rows_returned = metrics.counter(
            "repro_db_rows_returned_total",
            "Rows returned by SELECTs (materialized and streamed)",
            labels=("db",)).labels(self.name)
        self._tm_estimate_ratio = metrics.histogram(
            "repro_planner_estimate_ratio",
            "actual/estimated result rows per planned SELECT "
            "(1.0 = perfect estimate)",
            buckets=_RATIO_BUCKETS)
        self._tm_access_paths = metrics.counter(
            "repro_db_access_paths_total",
            "Operator kinds reaching base data in executed plans",
            labels=("path",))

    def _note_select(self, planned, rows_out: int, elapsed: float,
                     *, streamed: bool = False) -> None:
        """Fold one finished SELECT into the metrics registry."""
        hist = self._tm_stream_seconds if streamed \
            else self._tm_select_seconds
        hist.observe(elapsed)
        self._tm_rows_returned.inc(rows_out)
        if planned is None:
            return
        root = planned.root
        if root.est_rows is not None:
            self._tm_estimate_ratio.observe(
                (rows_out + 1.0) / (root.est_rows + 1.0))
        for node in root.walk():
            if node.kind in _ACCESS_KINDS:
                self._tm_access_paths.labels(node.kind).inc()

    @property
    def generation(self) -> int:
        """Cheap mutation stamp: bumped once per DML/DDL statement (and
        per bulk helper) under the write lock, so any observable data
        change moves it forward.  ANALYZE and the lock-free SESQL
        temp-table injection leave it unchanged — neither alters what a
        query against the durable schema can see.  The federation layer
        keys its fragment-result cache on ``(source, SQL, generation)``.
        """
        return self._generation

    def bump_generation(self) -> None:
        """Advance the mutation stamp for an out-of-band data change
        (e.g. attaching a foreign table): invalidates every
        generation-keyed cache entry for this database."""
        with self.rwlock.write_locked():
            self._generation += 1
            if self.durability_journal is not None:
                self.durability_journal.log(
                    "bump", {}, generation=self._generation)

    def restore_generation(self, generation: int) -> None:
        """Advance the mutation stamp to at least *generation* (crash
        recovery: caches must stay monotonic across a restart)."""
        with self.rwlock.write_locked():
            self._generation = max(self._generation, generation)

    def pin_generation(self, generation: int) -> None:
        """Set the mutation stamp to exactly *generation*.

        Replaying primary history (crash recovery, a read replica
        tailing the WAL) drives the normal mutation paths, whose
        incidental bumps may overshoot the recorded counter; pinning
        afterwards keeps the stamp byte-identical to the primary's, so
        generation equality really means "same data".
        """
        with self.rwlock.write_locked():
            self._generation = generation

    @property
    def last_plan(self):
        """The plan of the most recent top-level SELECT *on this
        thread* (observability: the SESQL engine and ``explain``
        surface it).  Thread-local so concurrent readers don't report
        each other's plans."""
        return getattr(self._plans, "last_plan", None)

    @last_plan.setter
    def last_plan(self, value) -> None:
        self._plans.last_plan = value

    @property
    def last_vectorized_ops(self) -> set:
        """Which operator kinds ("scan", "filter", "project",
        "aggregate") compiled to the batch path in the most recent
        SELECT *on this thread* — empty when it ran fully row-at-a-time.
        Observability only (tests assert fallback behaviour with it)."""
        return getattr(self._plans, "last_vectorized", set())

    @property
    def last_vectorized_fallbacks(self) -> list:
        """``(expression, reason)`` pairs for WHERE conjuncts of the
        most recent SELECT *on this thread* that a vectorized scan had
        to evaluate row-at-a-time — why each predicate fell off the
        batch path, in the analyzer's ``W-VEC-FALLBACK`` vocabulary.
        Empty when the scan was fully vectorized (or not batched)."""
        return getattr(self._plans, "last_fallbacks", [])

    # -- SQL entry points ---------------------------------------------------

    def execute(self, sql: str) -> ResultSet | int | None:
        """Execute one statement.

        Returns a :class:`ResultSet` for SELECT, an affected-row count for
        DML, and ``None`` for DDL.
        """
        return self.execute_ast(parse_sql(sql))

    def execute_script(self, sql: str) -> list[ResultSet | int | None]:
        """Execute a semicolon-separated script, returning all results."""
        return [self.execute_ast(stmt) for stmt in parse_script(sql)]

    def query(self, sql: str) -> ResultSet:
        """Execute a statement that must produce rows."""
        result = self.execute(sql)
        if not isinstance(result, ResultSet):
            raise ExecutionError("statement did not produce rows")
        return result

    def execute_ast(self, stmt: ast.Statement) -> ResultSet | int | None:
        if isinstance(stmt, ast.SelectQuery):
            with self.rwlock.read_locked():
                return self._run_select(stmt)
        with self.rwlock.write_locked():
            if isinstance(stmt, ast.AnalyzeStmt):
                return self._run_mutation(stmt)
            try:
                return self._run_mutation(stmt)
            finally:
                # Bumped even when the statement fails: a multi-row
                # INSERT that dies mid-way has already mutated data, so
                # over-invalidating generation-keyed caches is safe
                # where a missed invalidation would serve stale rows.
                self._generation += 1
                # Logged even when the statement fails, for the same
                # reason: the partial mutation is part of durable
                # state, and replay re-raises deterministically.
                journal = self.durability_journal
                if journal is not None:
                    try:
                        sql = render_statement(stmt)
                    except RelationalError:
                        # Unexecutable statement kind: _run_mutation
                        # raised before touching any data.
                        sql = None
                    if sql is not None:
                        journal.log("sql", {"sql": sql},
                                    generation=self._generation)

    def _run_mutation(self, stmt: ast.Statement) -> int | None:
        if isinstance(stmt, ast.InsertStmt):
            return self._run_insert(stmt)
        if isinstance(stmt, ast.UpdateStmt):
            return self._run_update(stmt)
        if isinstance(stmt, ast.DeleteStmt):
            return self._run_delete(stmt)
        if isinstance(stmt, ast.CreateTableStmt):
            return self._run_create_table(stmt)
        if isinstance(stmt, ast.DropTableStmt):
            self.catalog.drop_table(stmt.name, stmt.if_exists)
            self.stats.forget(stmt.name)
            return None
        if isinstance(stmt, ast.CreateIndexStmt):
            return self._run_create_index(stmt)
        if isinstance(stmt, ast.DropIndexStmt):
            return self._run_drop_index(stmt)
        if isinstance(stmt, ast.AnalyzeStmt):
            self.analyze(stmt.table)
            return None
        raise RelationalError(
            f"cannot execute {type(stmt).__name__}")

    # -- SELECT ----------------------------------------------------------------

    def _plan_and_compile(self, query: ast.SelectQuery):
        planned = None
        self.last_plan = None  # never report a stale plan for this query
        if self.planner.enabled:
            from ..planner.plan import is_trivial_select, plan_select
            # Trivial selects skip planning (and its deep copy) so
            # point lookups stay as fast as with the planner off.
            if not is_trivial_select(query):
                tel = self.telemetry
                if tel is None:
                    planned = plan_select(query, self.catalog, self.stats,
                                          self.planner)
                else:
                    started = time.perf_counter()
                    with tel.span("db.plan", db=self.name):
                        planned = plan_select(query, self.catalog,
                                              self.stats, self.planner)
                    self._tm_plan_seconds.observe(
                        time.perf_counter() - started)
                    if tel.options.instrument_operators:
                        planned.instrument = True
                if not self.vectorized:
                    # The planner marks batch-capable operators
                    # statically; drop the marks when this database
                    # forces the row path.
                    for node in planned.root.walk():
                        node.vectorized = False
                self.last_plan = planned
                query = planned.query
        plan = compile_query(query, self.catalog, planned=planned,
                             vectorize=self.vectorized,
                             exec_hooks=self._exec_hooks)
        self._plans.last_vectorized = plan.vectorized_ops
        self._plans.last_fallbacks = plan.vectorized_fallbacks
        return plan, planned

    def _run_select(self, query: ast.SelectQuery) -> ResultSet:
        tel = self.telemetry
        if tel is None:
            plan, planned = self._plan_and_compile(query)
            rows = plan.run(())
            if planned is not None:
                planned.root.actual_rows = len(rows)
            return ResultSet(plan.schema.names(), rows)
        started = time.perf_counter()
        with tel.span("db.execute", db=self.name) as span:
            plan, planned = self._plan_and_compile(query)
            rows = plan.run(())
            if planned is not None:
                planned.root.actual_rows = len(rows)
            if span is not None:
                span.attrs["rows"] = len(rows)
        self._note_select(planned, len(rows), time.perf_counter() - started)
        return ResultSet(plan.schema.names(), rows)

    # -- streaming SELECT --------------------------------------------------------

    def stream(self, sql: str) -> Cursor:
        """Execute a SELECT lazily, returning a :class:`Cursor`.

        Rows are produced as the cursor is consumed, so ``LIMIT k``
        stops after *k* rows instead of materializing the full input.
        The cursor holds this database's read lock until it is
        exhausted or closed — close it (or use ``with``) before running
        DML from the same thread.
        """
        stmt = parse_sql(sql)
        if not isinstance(stmt, ast.SelectQuery):
            raise ExecutionError("stream() requires a SELECT statement")
        return self.stream_ast(stmt)

    def stream_ast(self, query: ast.SelectQuery) -> Cursor:
        """Streaming execution of an already-parsed SELECT."""
        # The read hold is taken HERE, not on first fetch: the cursor's
        # documented guarantee is writer exclusion from creation to
        # close, with no gap in which a DELETE could slip between
        # open and first row.  The hold transfers to the generator and
        # is released (idempotently) on exhaustion, close() or GC.
        hold = self.rwlock.read_hold()
        tel = self.telemetry
        started = time.perf_counter() if tel is not None else 0.0
        try:
            # Plan/compile eagerly so schema errors surface here, not
            # on the first fetch.
            with (tel.span("db.stream", db=self.name)
                  if tel is not None else _NOOP):
                plan, planned = self._plan_and_compile(query)
        except BaseException:
            hold.release()
            raise

        def rows() -> Iterator[tuple]:
            produced = 0
            try:
                for row in plan.stream(()):
                    produced += 1
                    yield row
            finally:
                hold.release()
                # Record on early termination (LIMIT, close()) too:
                # the count of rows actually produced.
                if planned is not None:
                    planned.root.actual_rows = produced
                if tel is not None:
                    self._note_select(
                        planned, produced,
                        time.perf_counter() - started, streamed=True)

        return Cursor(plan.schema.names(), rows(), on_close=hold.release)

    # -- planner surface --------------------------------------------------------

    def analyze(self, table_name: str | None = None) -> list:
        """Collect planner statistics for one table (or all of them).

        Foreign tables are scanned too — an explicit ANALYZE is exactly
        the moment a remote round-trip is acceptable.
        """
        from .errors import CatalogError
        buckets = self.planner.histogram_buckets
        with self.rwlock.write_locked():
            if table_name is not None:
                names = [table_name]
            else:
                # Skip SESQL temp tables: they are per-call scratch
                # injected/dropped without the write lock, so they may
                # vanish mid-loop and their stats would leak.
                names = [name for name in self.catalog.table_names()
                         if not name.startswith("__sesql_")]
            collected = []
            for name in names:
                try:
                    table = self.catalog.table(name)
                except CatalogError:
                    if table_name is not None:
                        raise
                    continue  # concurrently dropped temp/scratch table
                collected.append(self.stats.analyze(table, buckets))
            return collected

    def explain(self, target: "str | ast.SelectQuery",
                analyze: bool = False):
        """The cost-based plan for a SELECT, without side effects.

        With ``analyze=True`` the query is executed with row counters
        attached, so every operator reports estimated *and* actual rows
        (EXPLAIN ANALYZE).  Returns a
        :class:`repro.planner.PlannedStatement`.
        """
        from ..planner import plan_select
        stmt = parse_sql(target) if isinstance(target, str) else target
        if not isinstance(stmt, ast.SelectQuery):
            raise ExecutionError("explain() requires a SELECT statement")
        options = self.planner
        if not options.enabled:
            options = options.replace(
                fold_constants=False, predicate_pushdown=False,
                prune_projections=False, reorder_joins=False)
        with self.rwlock.read_locked():
            planned = plan_select(stmt, self.catalog, self.stats, options)
            planned.instrument = analyze
            if not self.vectorized:
                for node in planned.root.walk():
                    node.vectorized = False
            if analyze:
                plan = compile_query(planned.query, self.catalog,
                                     planned=planned,
                                     vectorize=self.vectorized)
                planned.root.actual_rows = len(plan.run(()))
        return planned

    # -- DML ----------------------------------------------------------------------

    def _constant_context(self) -> CompileContext:
        return _make_context(self.catalog)

    def _run_insert(self, stmt: ast.InsertStmt) -> int:
        table = self.catalog.table(stmt.table)
        columns = stmt.columns or table.schema.column_names()
        for name in columns:
            if not table.schema.has_column(name):
                raise SchemaError(
                    f"table {table.name!r} has no column {name!r}")
        count = 0
        track = self.stats.get(table.name) is not None
        inserted: list[tuple] = []
        if stmt.rows is not None:
            ctx = self._constant_context()
            for row_exprs in stmt.rows:
                if len(row_exprs) != len(columns):
                    raise ExecutionError(
                        f"INSERT expects {len(columns)} values per row, "
                        f"got {len(row_exprs)}")
                values = {}
                for name, expr in zip(columns, row_exprs):
                    fn = compile_expr(expr, [], ctx)
                    values[name] = fn(())
                row_id = table.insert_row(values)
                if track:
                    inserted.append(table.row(row_id))
                count += 1
        else:
            plan = compile_query(stmt.query, self.catalog,
                                 vectorize=self.vectorized)
            if len(plan.schema) != len(columns):
                raise ExecutionError(
                    f"INSERT ... SELECT expects {len(columns)} columns, "
                    f"got {len(plan.schema)}")
            for row in plan.run(()):
                row_id = table.insert_row(dict(zip(columns, row)))
                if track:
                    inserted.append(table.row(row_id))
                count += 1
        if inserted:
            self.stats.note_inserted(table.name, inserted, table.schema)
        return count

    def _run_update(self, stmt: ast.UpdateStmt) -> int:
        table = self.catalog.table(stmt.table)
        from .schema import RowSchema
        scope = RowSchema.for_table(table.schema, table.name)
        ctx = self._constant_context()
        assignment_fns = []
        for column, expr in stmt.assignments:
            if not table.schema.has_column(column):
                raise SchemaError(
                    f"table {table.name!r} has no column {column!r}")
            assignment_fns.append((column, compile_expr(expr, [scope], ctx)))
        where_fn = None
        if stmt.where is not None:
            from .compiler import compile_predicate
            where_fn = compile_predicate(stmt.where, [scope], ctx)
        pending: list[tuple[int, dict[str, Any]]] = []
        for row_id, row in list(table.rows_with_ids()):
            if where_fn is None or where_fn(((row),)):
                changes = {column: fn((row,))
                           for column, fn in assignment_fns}
                pending.append((row_id, changes))
        for row_id, changes in pending:
            table.update_row(row_id, changes)
        if pending and self.stats.get(table.name) is not None:
            self.stats.note_updated(
                table.name, [table.row(row_id) for row_id, _c in pending],
                table.schema)
        return len(pending)

    def _run_delete(self, stmt: ast.DeleteStmt) -> int:
        table = self.catalog.table(stmt.table)
        from .schema import RowSchema
        scope = RowSchema.for_table(table.schema, table.name)
        ctx = self._constant_context()
        where_fn = None
        if stmt.where is not None:
            from .compiler import compile_predicate
            where_fn = compile_predicate(stmt.where, [scope], ctx)
        doomed = [row_id for row_id, row in list(table.rows_with_ids())
                  if where_fn is None or where_fn((row,))]
        for row_id in doomed:
            table.delete_row(row_id)
        if doomed:
            self.stats.note_deleted(table.name, len(doomed))
        return len(doomed)

    # -- DDL ---------------------------------------------------------------------------

    def _run_create_table(self, stmt: ast.CreateTableStmt) -> None:
        columns = []
        ctx = self._constant_context()
        for definition in stmt.columns:
            data_type = parse_type_name(definition.type_name)
            default_value = None
            has_default = False
            if definition.default is not None:
                default_value = compile_expr(definition.default, [], ctx)(())
                has_default = True
            columns.append(Column(
                name=definition.name,
                data_type=data_type,
                nullable=not (definition.not_null or definition.primary_key),
                primary_key=definition.primary_key,
                unique=definition.unique,
                default=default_value,
                has_default=has_default,
            ))
        schema = TableSchema(stmt.name, columns)
        self.catalog.create_table(schema, stmt.if_not_exists)
        return None

    def _run_create_index(self, stmt: ast.CreateIndexStmt) -> None:
        table = self.catalog.table(stmt.table)
        table.create_index(stmt.name, stmt.columns, stmt.unique, stmt.kind)
        return None

    def _run_drop_index(self, stmt: ast.DropIndexStmt) -> None:
        found = self.catalog.find_index(stmt.name)
        if found is None:
            if stmt.if_exists:
                return None
            raise SchemaError(f"index {stmt.name!r} does not exist")
        table, name = found
        table.drop_index(name)
        return None

    # -- convenience helpers ---------------------------------------------------------

    def create_table(self, name: str, columns: list[Column],
                     if_not_exists: bool = False) -> Table | None:
        """Programmatic CREATE TABLE."""
        with self.rwlock.write_locked():
            table = self.catalog.create_table(
                TableSchema(name, columns), if_not_exists)
            self._generation += 1
            if self.durability_journal is not None:
                # Logged even when IF NOT EXISTS found the table (the
                # generation moved); replay hits the same no-op.
                self.durability_journal.log(
                    "create_table",
                    {"name": name, "if_not_exists": if_not_exists,
                     "columns": [col.to_spec() for col in columns]},
                    generation=self._generation)
            return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        """Programmatic DROP TABLE (write-locked, stats forgotten)."""
        with self.rwlock.write_locked():
            self.catalog.drop_table(name, if_exists)
            self.stats.forget(name)
            self._generation += 1
            if self.durability_journal is not None:
                self.durability_journal.log(
                    "drop_table", {"name": name, "if_exists": if_exists},
                    generation=self._generation)

    def create_temp_table(self, name: str,
                          columns: list[Column]) -> Table:
        """Inject a caller-private temp table *without* the write lock.

        Used by the SESQL WHERE rewrite (and tempdb combine): the name
        is unique per call and no other session ever references it, so
        this is a namespace operation, not a data mutation — taking the
        write lock here would serialize enriched *reads* behind every
        open cursor (and deadlock a session that already holds the read
        side).  Single dict insert: atomic under the GIL.
        """
        return self.catalog.create_table(TableSchema(name, columns), False)

    def drop_temp_table(self, name: str) -> None:
        """Drop a :meth:`create_temp_table` table (no write lock)."""
        self.catalog.drop_table(name, if_exists=True)
        self.stats.forget(name)  # in case an explicit ANALYZE hit it

    def insert_rows(self, table_name: str,
                    rows: Iterable[dict[str, Any]]) -> int:
        """Bulk-insert dictionaries (used by data generators)."""
        with self.rwlock.write_locked():
            table = self.catalog.table(table_name)
            track = self.stats.get(table.name) is not None
            journal = self.durability_journal
            inserted: list[tuple] = []
            # Journal the *coerced* stored tuples, not the caller's
            # dicts: the input may be a generator (consumed here) and
            # replay must reproduce storage state, not re-run coercion
            # on arbitrary caller objects.
            logged: list[tuple] | None = [] if journal is not None else None
            count = 0
            try:
                for row in rows:
                    row_id = table.insert_row(row)
                    if track:
                        inserted.append(table.row(row_id))
                    if logged is not None:
                        logged.append(table.row(row_id))
                    count += 1
            finally:
                if inserted:
                    self.stats.note_inserted(table.name, inserted,
                                             table.schema)
                self._generation += 1
                if logged:
                    journal.log(
                        "rows",
                        {"table": table.name,
                         "columns": table.schema.column_names(),
                         "rows": logged},
                        generation=self._generation)
            return count

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def table_names(self) -> list[str]:
        return self.catalog.table_names()


def column(name: str, type_name: str, nullable: bool = True,
           primary_key: bool = False, unique: bool = False,
           default: Any = None, has_default: bool = False) -> Column:
    """Shorthand Column factory accepting SQL type names."""
    data_type = (type_name if isinstance(type_name, DataType)
                 else parse_type_name(type_name))
    return Column(name, data_type, nullable and not primary_key,
                  primary_key, unique, default, has_default)
