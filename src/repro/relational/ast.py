"""Abstract syntax tree for the SQL dialect understood by the engine.

The same node classes are produced by the parser and consumed by the
compiler/executor; the SESQL layer additionally builds these nodes
programmatically when it synthesises the final enriched query (Fig. 6 of
the paper), so every node can also be rendered back to SQL text by
:mod:`repro.relational.render`.

``node_key`` provides structural equality, which the aggregate planner
uses to match GROUP BY expressions against SELECT expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union


class Node:
    """Base class for all AST nodes."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr(Node):
    __slots__ = ()


@dataclass
class Literal(Expr):
    value: Any  # None, bool, int, float or str


@dataclass
class ColumnRef(Expr):
    name: str
    qualifier: Optional[str] = None

    def display(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass
class Star(Expr):
    """``*`` or ``alias.*`` — only valid in select lists and COUNT(*)."""

    qualifier: Optional[str] = None


@dataclass
class UnaryOp(Expr):
    op: str  # '-', '+', 'NOT'
    operand: Expr


@dataclass
class BinaryOp(Expr):
    op: str  # '=', '<>', '<', '<=', '>', '>=', '+', '-', '*', '/', '%', '||'
    left: Expr
    right: Expr


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    operand: Expr
    items: list[Expr] = field(default_factory=list)
    negated: bool = False


@dataclass
class InSubquery(Expr):
    operand: Expr
    query: "SelectQuery" = None
    negated: bool = False


@dataclass
class Exists(Expr):
    query: "SelectQuery"
    negated: bool = False


@dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class FunctionCall(Expr):
    name: str
    args: list[Expr] = field(default_factory=list)
    distinct: bool = False
    star: bool = False  # COUNT(*)


@dataclass
class CaseExpr(Expr):
    operand: Optional[Expr]  # CASE x WHEN ... vs searched CASE
    whens: list[tuple[Expr, Expr]] = field(default_factory=list)
    else_result: Optional[Expr] = None


@dataclass
class Cast(Expr):
    operand: Expr
    type_name: str


@dataclass
class ScalarSubquery(Expr):
    query: "SelectQuery"


@dataclass
class SlotRef(Expr):
    """Internal: positional reference into the current row (aggregation)."""

    index: int
    name: str = "?slot"


# ---------------------------------------------------------------------------
# Table expressions (FROM clause)
# ---------------------------------------------------------------------------

class TableExpr(Node):
    __slots__ = ()


@dataclass
class TableRef(TableExpr):
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass
class SubqueryRef(TableExpr):
    query: "SelectQuery"
    alias: str


@dataclass
class Join(TableExpr):
    join_type: str  # 'INNER', 'LEFT', 'CROSS'
    left: TableExpr
    right: TableExpr
    condition: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

@dataclass
class SelectItem(Node):
    """One entry of the SELECT list: an expression with an optional alias,
    or a (qualified) star."""

    expr: Expr
    alias: Optional[str] = None

    @property
    def is_star(self) -> bool:
        return isinstance(self.expr, Star)

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        if isinstance(self.expr, FunctionCall):
            return self.expr.name.lower()
        return "?column?"


@dataclass
class OrderItem(Node):
    expr: Expr
    descending: bool = False


@dataclass
class SelectCore(Node):
    """A single SELECT ... FROM ... WHERE ... GROUP BY ... HAVING block."""

    items: list[SelectItem] = field(default_factory=list)
    distinct: bool = False
    from_clause: Optional[TableExpr] = None
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None


@dataclass
class SelectQuery(Node):
    """A full query: one or more cores chained by set operators, plus the
    trailing ORDER BY / LIMIT / OFFSET that apply to the combined result."""

    core: SelectCore = None
    compounds: list[tuple[str, SelectCore]] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None

    @property
    def is_compound(self) -> bool:
        return bool(self.compounds)


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------

@dataclass
class InsertStmt(Node):
    table: str
    columns: Optional[list[str]] = None
    rows: Optional[list[list[Expr]]] = None
    query: Optional[SelectQuery] = None


@dataclass
class UpdateStmt(Node):
    table: str
    assignments: list[tuple[str, Expr]] = field(default_factory=list)
    where: Optional[Expr] = None


@dataclass
class DeleteStmt(Node):
    table: str
    where: Optional[Expr] = None


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------

@dataclass
class ColumnDef(Node):
    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: Optional[Expr] = None


@dataclass
class CreateTableStmt(Node):
    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    if_not_exists: bool = False


@dataclass
class DropTableStmt(Node):
    name: str
    if_exists: bool = False


@dataclass
class CreateIndexStmt(Node):
    name: str
    table: str
    columns: list[str] = field(default_factory=list)
    unique: bool = False
    kind: str = "hash"  # CREATE INDEX ... USING SORTED for range indexes


@dataclass
class DropIndexStmt(Node):
    name: str
    if_exists: bool = False


@dataclass
class AnalyzeStmt(Node):
    """``ANALYZE [table]`` — collect planner statistics."""

    table: Optional[str] = None


Statement = Union[SelectQuery, InsertStmt, UpdateStmt, DeleteStmt,
                  CreateTableStmt, DropTableStmt, CreateIndexStmt,
                  DropIndexStmt, AnalyzeStmt]


# ---------------------------------------------------------------------------
# Structural keys and tree walking
# ---------------------------------------------------------------------------

def node_key(node: Any) -> Any:
    """A hashable structural key; column names compare case-insensitively."""
    if node is None:
        return None
    if isinstance(node, Literal):
        return ("lit", repr(node.value))
    if isinstance(node, ColumnRef):
        return ("col", (node.qualifier or "").lower(), node.name.lower())
    if isinstance(node, Star):
        return ("star", (node.qualifier or "").lower())
    if isinstance(node, SlotRef):
        return ("slot", node.index)
    if isinstance(node, UnaryOp):
        return ("un", node.op, node_key(node.operand))
    if isinstance(node, BinaryOp):
        return ("bin", node.op, node_key(node.left), node_key(node.right))
    if isinstance(node, IsNull):
        return ("isnull", node.negated, node_key(node.operand))
    if isinstance(node, Like):
        return ("like", node.negated, node_key(node.operand),
                node_key(node.pattern))
    if isinstance(node, InList):
        return ("inlist", node.negated, node_key(node.operand),
                tuple(node_key(item) for item in node.items))
    if isinstance(node, Between):
        return ("between", node.negated, node_key(node.operand),
                node_key(node.low), node_key(node.high))
    if isinstance(node, FunctionCall):
        return ("fn", node.name.lower(), node.distinct, node.star,
                tuple(node_key(arg) for arg in node.args))
    if isinstance(node, CaseExpr):
        return ("case", node_key(node.operand),
                tuple((node_key(c), node_key(r)) for c, r in node.whens),
                node_key(node.else_result))
    if isinstance(node, Cast):
        return ("cast", node.type_name.upper(), node_key(node.operand))
    if isinstance(node, (InSubquery, Exists, ScalarSubquery)):
        # Subqueries compare by identity: good enough for GROUP BY matching.
        return ("subq", id(node))
    raise TypeError(f"no structural key for {type(node).__name__}")


def child_exprs(node: Expr) -> list[Expr]:
    """Direct expression children (subqueries are not descended into)."""
    if isinstance(node, UnaryOp):
        return [node.operand]
    if isinstance(node, BinaryOp):
        return [node.left, node.right]
    if isinstance(node, IsNull):
        return [node.operand]
    if isinstance(node, Like):
        return [node.operand, node.pattern]
    if isinstance(node, InList):
        return [node.operand] + list(node.items)
    if isinstance(node, InSubquery):
        return [node.operand]
    if isinstance(node, Between):
        return [node.operand, node.low, node.high]
    if isinstance(node, FunctionCall):
        return list(node.args)
    if isinstance(node, CaseExpr):
        children: list[Expr] = []
        if node.operand is not None:
            children.append(node.operand)
        for condition, result in node.whens:
            children.extend((condition, result))
        if node.else_result is not None:
            children.append(node.else_result)
        return children
    if isinstance(node, Cast):
        return [node.operand]
    return []


def walk_expr(node: Expr):
    """Yield *node* and every expression beneath it (not into subqueries)."""
    yield node
    for child in child_exprs(node):
        yield from walk_expr(child)


def iter_query_nodes(query: SelectQuery):
    """Yield every Expr and TableExpr node of *query*, including the
    contents of nested subqueries (IN/EXISTS/scalar subqueries and
    derived tables).  Used for whole-query analyses such as prepared-
    statement parameter binding and mediator view pruning."""
    cores = [query.core] + [core for _op, core in query.compounds]
    for core in cores:
        for item in core.items:
            yield from iter_expr_nodes(item.expr)
        if core.from_clause is not None:
            yield from _iter_table_nodes(core.from_clause)
        roots: list[Expr] = []
        if core.where is not None:
            roots.append(core.where)
        roots.extend(core.group_by)
        if core.having is not None:
            roots.append(core.having)
        for root in roots:
            yield from iter_expr_nodes(root)
    for order_item in query.order_by:
        yield from iter_expr_nodes(order_item.expr)
    if query.limit is not None:
        yield from iter_expr_nodes(query.limit)
    if query.offset is not None:
        yield from iter_expr_nodes(query.offset)


def iter_expr_nodes(expr: Expr):
    for node in walk_expr(expr):
        yield node
        if isinstance(node, (InSubquery, Exists, ScalarSubquery)) \
                and node.query is not None:
            yield from iter_query_nodes(node.query)


def _iter_table_nodes(table_expr: TableExpr):
    yield table_expr
    if isinstance(table_expr, SubqueryRef):
        yield from iter_query_nodes(table_expr.query)
    elif isinstance(table_expr, Join):
        yield from _iter_table_nodes(table_expr.left)
        yield from _iter_table_nodes(table_expr.right)
        if table_expr.condition is not None:
            yield from iter_expr_nodes(table_expr.condition)


def referenced_tables(query: SelectQuery) -> set[str]:
    """Lower-cased names of every table referenced anywhere in *query*."""
    return {node.name.lower() for node in iter_query_nodes(query)
            if isinstance(node, TableRef)}


def conjuncts(expr: Optional[Expr]) -> list[Expr]:
    """Split a predicate on top-level ANDs."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(parts: list[Expr]) -> Optional[Expr]:
    """Rebuild a predicate from conjuncts (inverse of :func:`conjuncts`)."""
    result: Optional[Expr] = None
    for part in parts:
        result = part if result is None else BinaryOp("AND", result, part)
    return result
