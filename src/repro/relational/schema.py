"""Table schemas: column definitions and name resolution metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .errors import SchemaError
from .types import DataType


@dataclass
class Column:
    """A single column definition.

    ``default`` is the literal default value used when an INSERT omits the
    column; ``None`` with ``has_default=False`` means "no default" (NULL is
    used when nullable, otherwise the insert fails).
    """

    name: str
    data_type: DataType
    nullable: bool = True
    primary_key: bool = False
    unique: bool = False
    default: Any = None
    has_default: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.primary_key:
            self.nullable = False

    def to_spec(self) -> dict:
        """JSON-able description; defaults are plain literals so the
        spec round-trips through WAL records and snapshots exactly."""
        return {"name": self.name, "type": self.data_type.value,
                "nullable": self.nullable,
                "primary_key": self.primary_key, "unique": self.unique,
                "default": self.default, "has_default": self.has_default}

    @classmethod
    def from_spec(cls, spec: dict) -> "Column":
        return cls(spec["name"], DataType(spec["type"]),
                   spec["nullable"], spec["primary_key"], spec["unique"],
                   spec["default"], spec["has_default"])


class TableSchema:
    """An ordered collection of columns with fast name lookup."""

    def __init__(self, name: str, columns: list[Column]) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns = list(columns)
        self._positions: dict[str, int] = {}
        for index, column in enumerate(self.columns):
            key = column.name.lower()
            if key in self._positions:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {name!r}")
            self._positions[key] = index
        pk = [c.name for c in self.columns if c.primary_key]
        self.primary_key: tuple[str, ...] = tuple(pk)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._positions

    def position_of(self, name: str) -> int:
        try:
            return self._positions[name.lower()]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.position_of(name)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.data_type}" for c in self.columns)
        return f"TableSchema({self.name!r}: {cols})"


@dataclass
class ResultColumn:
    """A column of a query result: display name plus optional qualifier."""

    name: str
    qualifier: str | None = None
    data_type: DataType | None = None

    def matches(self, name: str, qualifier: str | None) -> bool:
        """Does a reference ``qualifier.name`` (or bare ``name``) hit us?"""
        if name.lower() != self.name.lower():
            return False
        if qualifier is None:
            return True
        return (self.qualifier or "").lower() == qualifier.lower()


@dataclass
class RowSchema:
    """The shape of the tuples flowing between executor operators."""

    columns: list[ResultColumn] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.columns)

    def names(self) -> list[str]:
        return [column.name for column in self.columns]

    def find(self, name: str, qualifier: str | None) -> list[int]:
        """All positions matching a column reference (for ambiguity checks)."""
        return [i for i, column in enumerate(self.columns)
                if column.matches(name, qualifier)]

    def extended(self, other: "RowSchema") -> "RowSchema":
        return RowSchema(self.columns + other.columns)

    @staticmethod
    def for_table(schema: TableSchema, alias: str | None = None) -> "RowSchema":
        qualifier = alias or schema.name
        return RowSchema([
            ResultColumn(column.name, qualifier, column.data_type)
            for column in schema.columns
        ])
