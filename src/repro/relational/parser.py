"""Recursive-descent SQL parser producing :mod:`repro.relational.ast` nodes.

Supported statements: SELECT (with joins, subqueries, grouping, set
operations), INSERT (VALUES and SELECT forms), UPDATE, DELETE,
CREATE/DROP TABLE, CREATE/DROP INDEX.
"""

from __future__ import annotations

from . import ast
from .errors import NotSupportedError, SqlSyntaxError
from .lexer import Token, tokenize

_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP_CONCAT"})

_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


class SqlParser:
    """One-shot parser over a token stream."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self.tokens[self.index]
        if token.type != "EOF":
            self.index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> SqlSyntaxError:
        token = token or self._peek()
        return SqlSyntaxError(message, token.position, token.line, token.column)

    def _accept_keyword(self, *names: str) -> Token | None:
        if self._peek().is_keyword(*names):
            return self._next()
        return None

    def _expect_keyword(self, *names: str) -> Token:
        token = self._accept_keyword(*names)
        if token is None:
            expected = " or ".join(names)
            raise self._error(
                f"expected {expected}, found {self._peek().describe()}")
        return token

    def _accept_op(self, *ops: str) -> Token | None:
        if self._peek().is_op(*ops):
            return self._next()
        return None

    def _expect_op(self, *ops: str) -> Token:
        token = self._accept_op(*ops)
        if token is None:
            expected = " or ".join(repr(op) for op in ops)
            raise self._error(
                f"expected {expected}, found {self._peek().describe()}")
        return token

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.type == "IDENT":
            self._next()
            return str(token.value)
        raise self._error(f"expected {what}, found {token.describe()}")

    def _at_end(self) -> bool:
        return self._peek().type == "EOF"

    # -- entry points ----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        statement = self._statement()
        self._accept_op(";")
        if not self._at_end():
            raise self._error(
                f"unexpected trailing input {self._peek().describe()}")
        return statement

    def parse_statements(self) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        while not self._at_end():
            statements.append(self._statement())
            while self._accept_op(";"):
                pass
        return statements

    def parse_expression(self) -> ast.Expr:
        expr = self._expr()
        if not self._at_end():
            raise self._error(
                f"unexpected trailing input {self._peek().describe()}")
        return expr

    # -- statements -------------------------------------------------------------

    def _statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("SELECT") or token.is_op("("):
            return self._select_query()
        if token.is_keyword("INSERT"):
            return self._insert()
        if token.is_keyword("UPDATE"):
            return self._update()
        if token.is_keyword("DELETE"):
            return self._delete()
        if token.is_keyword("CREATE"):
            return self._create()
        if token.is_keyword("DROP"):
            return self._drop()
        if token.is_keyword("ANALYZE"):
            return self._analyze()
        raise self._error(f"expected a statement, found {token.describe()}")

    def _analyze(self) -> ast.AnalyzeStmt:
        self._expect_keyword("ANALYZE")
        table = None
        if self._peek().type == "IDENT":
            table = self._expect_identifier("table name")
        return ast.AnalyzeStmt(table)

    # -- SELECT ------------------------------------------------------------------

    def _select_query(self) -> ast.SelectQuery:
        core = self._select_core_or_parens()
        compounds: list[tuple[str, ast.SelectCore]] = []
        while True:
            if self._accept_keyword("UNION"):
                op = "UNION ALL" if self._accept_keyword("ALL") else "UNION"
            elif self._accept_keyword("INTERSECT"):
                op = "INTERSECT"
            elif self._accept_keyword("EXCEPT"):
                op = "EXCEPT"
            else:
                break
            compounds.append((op, self._select_core_or_parens()))
        query = ast.SelectQuery(core=core, compounds=compounds)
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            query.order_by = self._order_items()
        if self._accept_keyword("LIMIT"):
            query.limit = self._expr()
        if self._accept_keyword("OFFSET"):
            query.offset = self._expr()
        return query

    def _select_core_or_parens(self) -> ast.SelectCore:
        if self._accept_op("("):
            # Parenthesised core inside a compound; nested compounds are
            # flattened by recursive descent only when they carry no
            # ORDER/LIMIT of their own.
            inner = self._select_query()
            self._expect_op(")")
            if inner.is_compound or inner.order_by or inner.limit is not None:
                raise NotSupportedError(
                    "parenthesised compound queries with ORDER/LIMIT are "
                    "not supported inside set operations")
            return inner.core
        return self._select_core()

    def _select_core(self) -> ast.SelectCore:
        self._expect_keyword("SELECT")
        core = ast.SelectCore()
        if self._accept_keyword("DISTINCT"):
            core.distinct = True
        else:
            self._accept_keyword("ALL")
        core.items = [self._select_item()]
        while self._accept_op(","):
            core.items.append(self._select_item())
        if self._accept_keyword("FROM"):
            core.from_clause = self._from_clause()
        if self._accept_keyword("WHERE"):
            core.where = self._expr()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            core.group_by = [self._expr()]
            while self._accept_op(","):
                core.group_by.append(self._expr())
        if self._accept_keyword("HAVING"):
            core.having = self._expr()
        return core

    def _select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.is_op("*"):
            self._next()
            return ast.SelectItem(ast.Star())
        if (token.type == "IDENT" and self._peek(1).is_op(".")
                and self._peek(2).is_op("*")):
            qualifier = self._expect_identifier()
            self._expect_op(".")
            self._expect_op("*")
            return ast.SelectItem(ast.Star(qualifier))
        expr = self._expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._peek().type == "IDENT":
            alias = self._expect_identifier()
        return ast.SelectItem(expr, alias)

    def _order_items(self) -> list[ast.OrderItem]:
        items = [self._order_item()]
        while self._accept_op(","):
            items.append(self._order_item())
        return items

    def _order_item(self) -> ast.OrderItem:
        expr = self._expr()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr, descending)

    # -- FROM --------------------------------------------------------------------

    def _from_clause(self) -> ast.TableExpr:
        left = self._join_tree()
        while self._accept_op(","):
            right = self._join_tree()
            left = ast.Join("CROSS", left, right, None)
        return left

    def _join_tree(self) -> ast.TableExpr:
        left = self._table_primary()
        while True:
            if self._accept_keyword("CROSS"):
                self._expect_keyword("JOIN")
                right = self._table_primary()
                left = ast.Join("CROSS", left, right, None)
                continue
            join_type = None
            if self._peek().is_keyword("JOIN"):
                self._next()
                join_type = "INNER"
            elif self._peek().is_keyword("INNER"):
                self._next()
                self._expect_keyword("JOIN")
                join_type = "INNER"
            elif self._peek().is_keyword("LEFT"):
                self._next()
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                join_type = "LEFT"
            elif self._peek().is_keyword("RIGHT", "FULL"):
                raise NotSupportedError(
                    f"{self._peek().value} joins are not supported; "
                    "rewrite with LEFT JOIN")
            if join_type is None:
                return left
            right = self._table_primary()
            self._expect_keyword("ON")
            condition = self._expr()
            left = ast.Join(join_type, left, right, condition)

    def _table_primary(self) -> ast.TableExpr:
        if self._accept_op("("):
            if self._peek().is_keyword("SELECT"):
                query = self._select_query()
                self._expect_op(")")
                self._accept_keyword("AS")
                alias = self._expect_identifier("subquery alias")
                return ast.SubqueryRef(query, alias)
            inner = self._from_clause()
            self._expect_op(")")
            return inner
        name = self._expect_identifier("table name")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._peek().type == "IDENT":
            alias = self._expect_identifier()
        return ast.TableRef(name, alias)

    # -- INSERT / UPDATE / DELETE ---------------------------------------------------

    def _insert(self) -> ast.InsertStmt:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier("table name")
        columns = None
        if self._peek().is_op("(") and self._looks_like_column_list():
            self._expect_op("(")
            columns = [self._expect_identifier("column name")]
            while self._accept_op(","):
                columns.append(self._expect_identifier("column name"))
            self._expect_op(")")
        if self._accept_keyword("VALUES"):
            rows = [self._value_row()]
            while self._accept_op(","):
                rows.append(self._value_row())
            return ast.InsertStmt(table, columns, rows=rows)
        if self._peek().is_keyword("SELECT") or self._peek().is_op("("):
            return ast.InsertStmt(table, columns, query=self._select_query())
        raise self._error("expected VALUES or SELECT in INSERT")

    def _looks_like_column_list(self) -> bool:
        """Distinguish ``INSERT INTO t (a, b) VALUES`` from
        ``INSERT INTO t (SELECT ...)``."""
        return not self._peek(1).is_keyword("SELECT")

    def _value_row(self) -> list[ast.Expr]:
        self._expect_op("(")
        row = [self._expr()]
        while self._accept_op(","):
            row.append(self._expr())
        self._expect_op(")")
        return row

    def _update(self) -> ast.UpdateStmt:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier("table name")
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_op(","):
            assignments.append(self._assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expr()
        return ast.UpdateStmt(table, assignments, where)

    def _assignment(self) -> tuple[str, ast.Expr]:
        column = self._expect_identifier("column name")
        self._expect_op("=")
        return column, self._expr()

    def _delete(self) -> ast.DeleteStmt:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier("table name")
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expr()
        return ast.DeleteStmt(table, where)

    # -- CREATE / DROP ---------------------------------------------------------------

    def _create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        unique = bool(self._accept_keyword("UNIQUE"))
        if self._accept_keyword("TABLE"):
            if unique:
                raise self._error("UNIQUE does not apply to CREATE TABLE")
            return self._create_table()
        if self._accept_keyword("INDEX"):
            return self._create_index(unique)
        raise self._error("expected TABLE or INDEX after CREATE")

    def _create_table(self) -> ast.CreateTableStmt:
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._expect_identifier("table name")
        self._expect_op("(")
        columns = [self._column_def()]
        while self._accept_op(","):
            columns.append(self._column_def())
        self._expect_op(")")
        return ast.CreateTableStmt(name, columns, if_not_exists)

    def _column_def(self) -> ast.ColumnDef:
        name = self._expect_identifier("column name")
        token = self._peek()
        if token.type == "IDENT":
            type_name = self._expect_identifier("type name")
        elif token.type == "KEYWORD":
            # Allow type names that collide with keywords (none currently).
            type_name = str(self._next().value)
        else:
            raise self._error("expected a type name")
        if self._accept_op("("):
            # Swallow length arguments such as VARCHAR(60).
            while not self._peek().is_op(")"):
                self._next()
            self._expect_op(")")
        column = ast.ColumnDef(name, type_name)
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                column.not_null = True
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                column.primary_key = True
            elif self._accept_keyword("UNIQUE"):
                column.unique = True
            elif self._accept_keyword("DEFAULT"):
                column.default = self._expr()
            else:
                return column

    def _create_index(self, unique: bool) -> ast.CreateIndexStmt:
        name = self._expect_identifier("index name")
        self._expect_keyword("ON")
        table = self._expect_identifier("table name")
        self._expect_op("(")
        columns = [self._expect_identifier("column name")]
        while self._accept_op(","):
            columns.append(self._expect_identifier("column name"))
        self._expect_op(")")
        kind = "hash"
        if self._accept_keyword("USING"):
            kind = self._expect_identifier("index kind").lower()
        return ast.CreateIndexStmt(name, table, columns, unique, kind)

    def _drop(self) -> ast.Statement:
        self._expect_keyword("DROP")
        if self._accept_keyword("TABLE"):
            if_exists = self._if_exists()
            name = self._expect_identifier("table name")
            return ast.DropTableStmt(name, if_exists)
        if self._accept_keyword("INDEX"):
            if_exists = self._if_exists()
            name = self._expect_identifier("index name")
            return ast.DropIndexStmt(name, if_exists)
        raise self._error("expected TABLE or INDEX after DROP")

    def _if_exists(self) -> bool:
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            return True
        return False

    # -- expressions -------------------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Expr:
        left = self._additive()
        token = self._peek()
        if token.is_op(*_COMPARISON_OPS):
            op = str(self._next().value)
            return ast.BinaryOp(op, left, self._additive())
        if token.is_keyword("IS"):
            self._next()
            negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return ast.IsNull(left, negated)
        negated = bool(self._accept_keyword("NOT"))
        token = self._peek()
        if token.is_keyword("LIKE"):
            self._next()
            return ast.Like(left, self._additive(), negated)
        if token.is_keyword("BETWEEN"):
            self._next()
            low = self._additive()
            self._expect_keyword("AND")
            return ast.Between(left, low, self._additive(), negated)
        if token.is_keyword("IN"):
            self._next()
            return self._in_rest(left, negated)
        if negated:
            raise self._error("expected LIKE, BETWEEN or IN after NOT")
        return left

    def _in_rest(self, operand: ast.Expr, negated: bool) -> ast.Expr:
        self._expect_op("(")
        if self._peek().is_keyword("SELECT"):
            query = self._select_query()
            self._expect_op(")")
            return ast.InSubquery(operand, query, negated)
        items = []
        if not self._peek().is_op(")"):
            items.append(self._expr())
            while self._accept_op(","):
                items.append(self._expr())
        self._expect_op(")")
        return ast.InList(operand, items, negated)

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.is_op("+", "-", "||"):
                op = str(self._next().value)
                left = ast.BinaryOp(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.is_op("*", "/", "%"):
                op = str(self._next().value)
                left = ast.BinaryOp(op, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expr:
        token = self._peek()
        if token.is_op("-", "+"):
            self._next()
            return ast.UnaryOp(str(token.value), self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.type == "NUMBER" or token.type == "STRING":
            self._next()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self._next()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._next()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._next()
            return ast.Literal(False)
        if token.is_keyword("CASE"):
            return self._case()
        if token.is_keyword("CAST"):
            return self._cast()
        if token.is_keyword("EXISTS"):
            self._next()
            self._expect_op("(")
            query = self._select_query()
            self._expect_op(")")
            return ast.Exists(query)
        if token.is_op("("):
            self._next()
            if self._peek().is_keyword("SELECT"):
                query = self._select_query()
                self._expect_op(")")
                return ast.ScalarSubquery(query)
            expr = self._expr()
            self._expect_op(")")
            return expr
        if token.type == "IDENT":
            return self._identifier_expr()
        if token.is_keyword("LEFT", "RIGHT"):
            # LEFT/RIGHT are also string functions; allow the call form.
            if self._peek(1).is_op("("):
                name = str(self._next().value)
                return self._function_call(name)
        raise self._error(f"unexpected {token.describe()} in expression")

    def _identifier_expr(self) -> ast.Expr:
        name = self._expect_identifier()
        if self._peek().is_op("("):
            return self._function_call(name)
        if self._accept_op("."):
            column = self._expect_identifier("column name")
            return ast.ColumnRef(column, qualifier=name)
        return ast.ColumnRef(name)

    def _function_call(self, name: str) -> ast.Expr:
        self._expect_op("(")
        if self._accept_op("*"):
            self._expect_op(")")
            return ast.FunctionCall(name, star=True)
        distinct = bool(self._accept_keyword("DISTINCT"))
        args: list[ast.Expr] = []
        if not self._peek().is_op(")"):
            args.append(self._expr())
            while self._accept_op(","):
                args.append(self._expr())
        self._expect_op(")")
        return ast.FunctionCall(name, args, distinct=distinct)

    def _case(self) -> ast.Expr:
        self._expect_keyword("CASE")
        operand = None
        if not self._peek().is_keyword("WHEN"):
            operand = self._expr()
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("WHEN"):
            condition = self._expr()
            self._expect_keyword("THEN")
            whens.append((condition, self._expr()))
        if not whens:
            raise self._error("CASE requires at least one WHEN branch")
        else_result = None
        if self._accept_keyword("ELSE"):
            else_result = self._expr()
        self._expect_keyword("END")
        return ast.CaseExpr(operand, whens, else_result)

    def _cast(self) -> ast.Expr:
        self._expect_keyword("CAST")
        self._expect_op("(")
        operand = self._expr()
        self._expect_keyword("AS")
        token = self._peek()
        if token.type == "IDENT":
            type_name = self._expect_identifier("type name")
        else:
            type_name = str(self._next().value)
        self._expect_op(")")
        return ast.Cast(operand, type_name)


def parse_sql(text: str) -> ast.Statement:
    """Parse a single SQL statement."""
    return SqlParser(text).parse_statement()


def parse_script(text: str) -> list[ast.Statement]:
    """Parse a semicolon-separated sequence of statements."""
    return SqlParser(text).parse_statements()


def parse_expr(text: str) -> ast.Expr:
    """Parse a standalone SQL expression (used by SESQL condition tags)."""
    return SqlParser(text).parse_expression()


def is_aggregate_call(expr: ast.Expr) -> bool:
    return (isinstance(expr, ast.FunctionCall)
            and expr.name.upper() in _AGGREGATES)
