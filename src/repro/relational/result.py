"""Query results: materialized sets and streaming cursors.

:class:`ResultSet` is the fully-materialized container the engine has
always returned; :class:`Cursor` is its lazy counterpart — a DB-API
flavoured handle (``fetchone`` / ``fetchmany`` / ``fetchall``,
iterable, ``columns``) over a row stream that is only produced as it is
consumed, so ``LIMIT k`` queries stop after *k* rows instead of
materializing their full input.  A cursor can always be drained into a
``ResultSet`` (``to_result_set`` / ``ResultSet.from_cursor``) for
backwards compatibility.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator

from .errors import ExecutionError
from .types import format_value


class Cursor:
    """A streaming query result.

    Wraps a lazy row iterator plus its column names.  Closing the
    cursor (explicitly, via ``with``, or on exhaustion) closes the
    underlying generator — releasing any read lock and temporary
    resources the producer tied to it — and fires ``on_close`` hooks,
    which must be idempotent.
    """

    def __init__(self, columns: list[str], rows: Iterable[tuple],
                 on_close: Callable[[], None] | None = None) -> None:
        self.columns = list(columns)
        self._rows = iter(rows)
        self._on_close = on_close
        self._closed = False
        #: Rows this cursor has handed to its consumer so far.  Unlike
        #: DB-API ``rowcount`` it is exact for partially-drained
        #: streams (early LIMIT, explicit close), which is what trace
        #: spans and pagination accounting need.
        self.rows_yielded = 0

    # -- iteration -----------------------------------------------------------

    def __iter__(self) -> "Cursor":
        return self

    def __next__(self) -> tuple:
        if self._closed:
            raise StopIteration
        try:
            row = next(self._rows)
        except StopIteration:
            self.close()
            raise
        self.rows_yielded += 1
        return row

    # -- DB-API-style fetches -------------------------------------------------

    def fetchone(self) -> tuple | None:
        """The next row, or ``None`` when the stream is exhausted."""
        return next(self, None)

    def fetchmany(self, size: int = 256) -> list[tuple]:
        """Up to *size* rows (an empty list means exhausted)."""
        if size < 0:
            raise ExecutionError(
                f"fetchmany size must be non-negative, got {size}")
        return list(itertools.islice(self, size))

    def fetchall(self) -> list[tuple]:
        """Every remaining row (closes the cursor)."""
        return list(self)

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop the stream and release producer-side resources."""
        if self._closed:
            return
        self._closed = True
        closer = getattr(self._rows, "close", None)
        if closer is not None:
            closer()
        if self._on_close is not None:
            self._on_close()

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass

    # -- interop --------------------------------------------------------------

    def to_result_set(self) -> "ResultSet":
        """Drain the remaining rows into a materialized ResultSet."""
        return ResultSet(self.columns, self.fetchall())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"Cursor(columns={self.columns!r}, {state})"


class ResultSet:
    """An ordered table of result rows with named columns."""

    def __init__(self, columns: list[str], rows: list[tuple]) -> None:
        self.columns = list(columns)
        self.rows = list(rows)

    @classmethod
    def from_cursor(cls, cursor: Cursor) -> "ResultSet":
        """Materialize a streaming cursor (drains and closes it)."""
        return cls(cursor.columns, cursor.fetchall())

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    def column_index(self, name: str) -> int:
        lowered = [column.lower() for column in self.columns]
        try:
            return lowered.index(name.lower())
        except ValueError:
            raise ExecutionError(
                f"result has no column {name!r} "
                f"(columns: {', '.join(self.columns)})") from None

    def column_values(self, name: str) -> list[Any]:
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    def first(self) -> tuple | None:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"expected a 1x1 result, got {len(self.rows)} rows x "
                f"{len(self.columns)} columns")
        return self.rows[0][0]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def sorted_rows(self) -> list[tuple]:
        """Rows in a canonical order (for order-insensitive comparisons)."""
        return sorted(self.rows, key=lambda row: tuple(
            (value is None, str(type(value)), str(value)) for value in row))

    def same_rows(self, other: "ResultSet") -> bool:
        """Order-insensitive row equality."""
        return self.sorted_rows() == other.sorted_rows()

    def format_table(self, max_rows: int | None = 40) -> str:
        """ASCII rendering, handy in examples and EXPERIMENTS output."""
        header = list(self.columns)
        body = self.rows if max_rows is None else self.rows[:max_rows]
        cells = [[format_value(value) for value in row] for row in body]
        widths = [len(name) for name in header]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        divider = "+" + "+".join("-" * (width + 2) for width in widths) + "+"
        lines = [divider,
                 "|" + "|".join(f" {name.ljust(width)} "
                                for name, width in zip(header, widths)) + "|",
                 divider]
        for row in cells:
            lines.append("|" + "|".join(
                f" {cell.ljust(width)} "
                for cell, width in zip(row, widths)) + "|")
        lines.append(divider)
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultSet(columns={self.columns!r}, "
                f"rows={len(self.rows)})")
