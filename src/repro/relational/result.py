"""Query results: a small, inspectable container for rows and columns."""

from __future__ import annotations

from typing import Any, Iterator

from .errors import ExecutionError
from .types import format_value


class ResultSet:
    """An ordered table of result rows with named columns."""

    def __init__(self, columns: list[str], rows: list[tuple]) -> None:
        self.columns = list(columns)
        self.rows = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    def column_index(self, name: str) -> int:
        lowered = [column.lower() for column in self.columns]
        try:
            return lowered.index(name.lower())
        except ValueError:
            raise ExecutionError(
                f"result has no column {name!r} "
                f"(columns: {', '.join(self.columns)})") from None

    def column_values(self, name: str) -> list[Any]:
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    def first(self) -> tuple | None:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"expected a 1x1 result, got {len(self.rows)} rows x "
                f"{len(self.columns)} columns")
        return self.rows[0][0]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def sorted_rows(self) -> list[tuple]:
        """Rows in a canonical order (for order-insensitive comparisons)."""
        return sorted(self.rows, key=lambda row: tuple(
            (value is None, str(type(value)), str(value)) for value in row))

    def same_rows(self, other: "ResultSet") -> bool:
        """Order-insensitive row equality."""
        return self.sorted_rows() == other.sorted_rows()

    def format_table(self, max_rows: int | None = 40) -> str:
        """ASCII rendering, handy in examples and EXPERIMENTS output."""
        header = list(self.columns)
        body = self.rows if max_rows is None else self.rows[:max_rows]
        cells = [[format_value(value) for value in row] for row in body]
        widths = [len(name) for name in header]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        divider = "+" + "+".join("-" * (width + 2) for width in widths) + "+"
        lines = [divider,
                 "|" + "|".join(f" {name.ljust(width)} "
                                for name, width in zip(header, widths)) + "|",
                 divider]
        for row in cells:
            lines.append("|" + "|".join(
                f" {cell.ljust(width)} "
                for cell, width in zip(row, widths)) + "|")
        lines.append(divider)
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultSet(columns={self.columns!r}, "
                f"rows={len(self.rows)})")
