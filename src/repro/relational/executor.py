"""Query planning and execution.

``compile_query`` turns a SELECT AST into a :class:`QueryPlan` whose
``run(outer_rows)`` produces result tuples.  Compilation happens once;
correlated subqueries re-run the compiled plan per outer row, and
uncorrelated subqueries are cached after their first execution.

The physical operators are deliberately simple (hash joins when the ON
clause has equi-conjuncts, nested loops otherwise; hash aggregation; sort
via Python's timsort), which keeps behaviour easy to validate against the
paper's semantics while still scaling to the benchmark sizes.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator

from . import ast
from .batch import BATCH_SIZE, run_vector_aggregate
from .catalog import Catalog
from .compiler import (CompileContext, compile_expr, compile_predicate,
                       resolve_column)
from .aggregates import AGGREGATE_NAMES, make_aggregate
from .errors import (ExecutionError, NotSupportedError, SchemaError,
                     UnknownColumnError)
from .indexes import _normalize
from .schema import ResultColumn, RowSchema
from .table import Table, find_probe_index
from .types import DataType, is_true, sort_key, values_equal
from .render import render_expr
from .vectors import compile_filter_kernel, fallback_reason

#: Without a cost-based decision, equi-joins probe an index on the
#: inner table only when it is at least this large — below that, an
#: in-memory hash build is as fast and has no per-lookup overhead.
INDEX_PROBE_THRESHOLD = 64

Rows = tuple
RowFn = Callable[[Rows], Any]


def _norm_tuple(values: Iterable[Any]) -> tuple:
    """Hashable, type-normalised key for grouping / distinct / set ops."""
    return tuple(_normalize(value) for value in values)


class QueryPlan:
    """A compiled query: output schema plus a lazy row stream.

    ``stream()`` produces rows on demand — operators above it (LIMIT in
    particular) pull only what they need, so ``LIMIT k`` terminates
    after *k* rows.  ``run()`` is the materializing wrapper every
    pre-streaming call site still uses.

    A vectorized plan additionally carries ``chunks`` — a generator of
    row-tuple *batches*.  ``stream()`` flattens chunks back to rows, so
    cursors, pagination and ``rows_yielded`` accounting never see the
    batch boundary; ``run()`` extends from chunks directly, skipping the
    per-row generator machinery entirely.
    """

    def __init__(self, schema: RowSchema,
                 stream: Callable[[Rows], Iterator[tuple]] | None = None,
                 chunks: Callable[[Rows], Iterator[list]] | None = None
                 ) -> None:
        self.schema = schema
        self.chunks = chunks
        #: Vectorized operator kinds used anywhere in this plan's tree
        #: (filled in by ``compile_query``; empty for inner plans).
        self.vectorized_ops: set[str] = set()
        #: ``(expression, reason)`` pairs for conjuncts a vectorized
        #: scan had to evaluate on the row path (hybrid plans).
        self.vectorized_fallbacks: list[tuple[str, str]] = []
        if stream is None:
            if chunks is None:
                raise ValueError("QueryPlan needs a stream or chunks")
            stream = self._flatten
        self._stream = stream

    def _flatten(self, outer_rows: Rows) -> Iterator[tuple]:
        for chunk in self.chunks(outer_rows):
            yield from chunk

    def stream(self, outer_rows: Rows = ()) -> Iterator[tuple]:
        return self._stream(outer_rows)

    def run(self, outer_rows: Rows = ()) -> list[tuple]:
        if self.chunks is not None:
            rows: list[tuple] = []
            for chunk in self.chunks(outer_rows):
                rows.extend(chunk)
            return rows
        return list(self._stream(outer_rows))


class SubPlan:
    """A compiled subquery usable from WHERE/SELECT expressions."""

    def __init__(self, query: ast.SelectQuery, catalog: Catalog,
                 scopes: list[RowSchema], ctx: CompileContext) -> None:
        watcher = ctx.push_watcher()
        try:
            self.plan = compile_query(query, catalog, scopes, ctx)
        finally:
            ctx.pop_watcher()
        self.correlated = any(depth < len(scopes) for depth in watcher)
        self._cache: list[tuple] | None = None

    def rows(self, outer_rows: Rows) -> list[tuple]:
        if not self.correlated:
            if self._cache is None:
                self._cache = self.plan.run(outer_rows)
            return self._cache
        return self.plan.run(outer_rows)

    def scalar(self, outer_rows: Rows) -> Any:
        if len(self.plan.schema) != 1:
            raise ExecutionError(
                "scalar subquery must return exactly one column")
        rows = self.rows(outer_rows)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        return rows[0][0]

    def exists(self, outer_rows: Rows) -> bool:
        return bool(self.rows(outer_rows))

    def column_values(self, outer_rows: Rows) -> list[Any]:
        if len(self.plan.schema) != 1:
            raise ExecutionError(
                "IN subquery must return exactly one column")
        return [row[0] for row in self.rows(outer_rows)]


def _make_context(catalog: Catalog, planned=None, vectorize: bool = True,
                  exec_hooks=None) -> CompileContext:
    ctx = CompileContext(subplan_factory=None,  # type: ignore[arg-type]
                         planned=planned, vectorize=vectorize,
                         exec_hooks=exec_hooks)

    def factory(query: ast.SelectQuery, scopes: list[RowSchema]) -> SubPlan:
        return SubPlan(query, catalog, scopes, ctx)

    ctx.subplan_factory = factory
    return ctx


def _counted(run: Callable[[Rows], Iterator[tuple]],
             node) -> Callable[[Rows], Iterator[tuple]]:
    """Wrap an operator's row stream with the plan node's row counter."""

    def counted(outer_rows: Rows) -> Iterator[tuple]:
        for row in run(outer_rows):
            node.count(1)
            yield row
    return counted


def _maybe_instrument(plan: FromPlan, ast_node,
                      ctx: CompileContext) -> FromPlan:
    node = ctx.counter_for(ast_node)
    if node is None:
        return plan
    return FromPlan(plan.schema, _counted(plan.run, node))


# ---------------------------------------------------------------------------
# FROM clause compilation
# ---------------------------------------------------------------------------

class FromPlan:
    def __init__(self, schema: RowSchema,
                 run: Callable[[Rows], Iterator[tuple]]) -> None:
        self.schema = schema
        self.run = run


def _collect_bindings(table_expr: ast.TableExpr, seen: set[str]) -> None:
    if isinstance(table_expr, ast.TableRef):
        name = table_expr.binding.lower()
        if name in seen:
            raise SchemaError(f"duplicate table alias {table_expr.binding!r}")
        seen.add(name)
    elif isinstance(table_expr, ast.SubqueryRef):
        name = table_expr.alias.lower()
        if name in seen:
            raise SchemaError(f"duplicate table alias {table_expr.alias!r}")
        seen.add(name)
    elif isinstance(table_expr, ast.Join):
        _collect_bindings(table_expr.left, seen)
        _collect_bindings(table_expr.right, seen)


def compile_table_expr(table_expr: ast.TableExpr, catalog: Catalog,
                       outer_scopes: list[RowSchema],
                       ctx: CompileContext) -> FromPlan:
    if isinstance(table_expr, ast.TableRef):
        table = catalog.table(table_expr.name)
        schema = RowSchema.for_table(table.schema, table_expr.binding)

        def scan(outer_rows: Rows) -> Iterator[tuple]:
            # Lazy: no snapshot copy.  Safe because SELECTs run under
            # the database's read lock (writers excluded) and DML
            # inner SELECTs (INSERT ... SELECT) materialize via run()
            # before mutating.
            return iter(table.rows())
        return _maybe_instrument(FromPlan(schema, scan), table_expr, ctx)

    if isinstance(table_expr, ast.SubqueryRef):
        plan = compile_query(table_expr.query, catalog, outer_scopes, ctx)
        schema = RowSchema([
            ResultColumn(column.name, table_expr.alias, column.data_type)
            for column in plan.schema.columns
        ])

        def scan_subquery(outer_rows: Rows) -> Iterator[tuple]:
            return plan.stream(outer_rows)
        return _maybe_instrument(FromPlan(schema, scan_subquery),
                                 table_expr, ctx)

    if isinstance(table_expr, ast.Join):
        return _maybe_instrument(
            _compile_join(table_expr, catalog, outer_scopes, ctx),
            table_expr, ctx)

    raise NotSupportedError(
        f"cannot compile {type(table_expr).__name__} in FROM")


def _try_compile(expr: ast.Expr, scopes: list[RowSchema],
                 ctx: CompileContext) -> RowFn | None:
    try:
        return compile_expr(expr, scopes, ctx)
    except UnknownColumnError:
        return None


def _innermost_position(expr: ast.Expr | None,
                        scopes: list[RowSchema]) -> int | None:
    """The column position of *expr* when it is a plain reference into
    the innermost scope (and not, say, a correlated outer column)."""
    if not isinstance(expr, ast.ColumnRef):
        return None
    try:
        depth, position = resolve_column(expr, scopes)
    except UnknownColumnError:  # pragma: no cover - caller pre-compiled
        return None
    if depth != len(scopes) - 1:
        return None
    return position


def _plan_index_probe(join: ast.Join, catalog: Catalog,
                      ctx: CompileContext,
                      right_positions: list[int | None]):
    """Decide whether this equi-join should probe an index on the inner
    table instead of building a hash table.

    The planner's per-join strategy (when a plan is attached) wins; with
    no plan, a probe is used when a matching index exists and the inner
    table is large enough that the per-lookup overhead pays off.
    Returns ``(index, covered_pair_indices, table)`` or ``None``.
    """
    if not isinstance(join.right, ast.TableRef):
        return None
    plan_node = ctx.plan_node(join)
    forced = plan_node.kind if plan_node is not None else None
    if forced in ("hash-join", "nested-loop", "cross-join"):
        return None  # the cost model already rejected a probe
    table = catalog.table(join.right.name)
    if not isinstance(table, Table):
        return None  # foreign tables expose no local indexes
    candidates = [(pair_index, position)
                  for pair_index, position in enumerate(right_positions)
                  if position is not None]
    if not candidates:
        return None
    column_names = [table.schema.columns[position].name
                    for _pair, position in candidates]
    found = find_probe_index(table, column_names)
    if found is None:
        return None
    if forced != "index-join" and len(table) < INDEX_PROBE_THRESHOLD:
        return None
    index, covered_positions = found
    covered = [candidates[i][0] for i in covered_positions]
    return index, covered, table


def _compile_join(join: ast.Join, catalog: Catalog,
                  outer_scopes: list[RowSchema],
                  ctx: CompileContext) -> FromPlan:
    left = compile_table_expr(join.left, catalog, outer_scopes, ctx)
    right = compile_table_expr(join.right, catalog, outer_scopes, ctx)
    combined = left.schema.extended(right.schema)
    left_scopes = outer_scopes + [left.schema]
    right_scopes = outer_scopes + [right.schema]
    combined_scopes = outer_scopes + [combined]
    pad = (None,) * len(right.schema)

    if join.join_type == "CROSS" or join.condition is None:
        if join.join_type == "LEFT":
            raise ExecutionError("LEFT JOIN requires an ON condition")

        def cross(outer_rows: Rows) -> Iterator[tuple]:
            right_rows = list(right.run(outer_rows))
            for left_row in left.run(outer_rows):
                for right_row in right_rows:
                    yield left_row + right_row
        return FromPlan(combined, cross)

    # Split the ON condition into hashable equi-conjuncts and a residual.
    equi_pairs: list[tuple[RowFn, RowFn]] = []
    # Per pair: the inner-table column position when the right side is a
    # plain reference into the inner scan (an index-probe candidate).
    equi_right_positions: list[int | None] = []
    residual: list[ast.Expr] = []
    for conjunct in ast.conjuncts(join.condition):
        pair = None
        right_ast = None
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
            left_fn = _try_compile(conjunct.left, left_scopes, ctx)
            right_fn = _try_compile(conjunct.right, right_scopes, ctx)
            if left_fn is not None and right_fn is not None:
                pair = (left_fn, right_fn)
                right_ast = conjunct.right
            else:
                left_fn = _try_compile(conjunct.right, left_scopes, ctx)
                right_fn = _try_compile(conjunct.left, right_scopes, ctx)
                if left_fn is not None and right_fn is not None:
                    pair = (left_fn, right_fn)
                    right_ast = conjunct.left
        if pair is not None:
            equi_pairs.append(pair)
            equi_right_positions.append(
                _innermost_position(right_ast, right_scopes))
        else:
            residual.append(conjunct)

    residual_expr = ast.conjoin(residual)
    residual_fn = (compile_predicate(residual_expr, combined_scopes, ctx)
                   if residual_expr is not None else None)
    is_left_join = join.join_type == "LEFT"

    if equi_pairs:
        left_keys = [pair[0] for pair in equi_pairs]
        right_keys = [pair[1] for pair in equi_pairs]

        probe = _plan_index_probe(join, catalog, ctx, equi_right_positions)
        if probe is not None:
            index, covered, probe_table = probe
            # A HashIndex bucket key is exact (same normalization as
            # values_equal), so covered positions need no recheck; a
            # SortedIndex coerces keys to float, which collapses
            # integers beyond 2**53 — every candidate must be verified.
            if getattr(index, "kind", None) == "hash":
                verify = [i for i in range(len(equi_pairs))
                          if i not in covered]
            else:
                verify = list(range(len(equi_pairs)))

            def index_probe_join(outer_rows: Rows) -> Iterator[tuple]:
                for left_row in left.run(outer_rows):
                    key_rows = outer_rows + (left_row,)
                    values = [fn(key_rows) for fn in left_keys]
                    matched = False
                    if not any(value is None for value in values):
                        key = tuple(values[i] for i in covered)
                        for row_id in sorted(index.lookup(key)):
                            right_row = probe_table.row(row_id)
                            inner_rows = outer_rows + (right_row,)
                            if any(not is_true(values_equal(
                                    values[i], right_keys[i](inner_rows)))
                                    for i in verify):
                                continue
                            combined_row = left_row + right_row
                            if residual_fn is None or residual_fn(
                                    outer_rows + (combined_row,)):
                                matched = True
                                yield combined_row
                    if is_left_join and not matched:
                        yield left_row + pad
            return FromPlan(combined, index_probe_join)

        def hash_join(outer_rows: Rows) -> Iterator[tuple]:
            buckets: dict[tuple, list[tuple]] = {}
            for right_row in right.run(outer_rows):
                key_rows = outer_rows + (right_row,)
                values = [fn(key_rows) for fn in right_keys]
                if any(value is None for value in values):
                    continue  # NULL never matches in an equi-join
                buckets.setdefault(_norm_tuple(values), []).append(right_row)
            for left_row in left.run(outer_rows):
                key_rows = outer_rows + (left_row,)
                values = [fn(key_rows) for fn in left_keys]
                matched = False
                if not any(value is None for value in values):
                    for right_row in buckets.get(_norm_tuple(values), ()):
                        combined_row = left_row + right_row
                        if residual_fn is None or residual_fn(
                                outer_rows + (combined_row,)):
                            matched = True
                            yield combined_row
                if is_left_join and not matched:
                    yield left_row + pad
        return FromPlan(combined, hash_join)

    condition_fn = compile_predicate(join.condition, combined_scopes, ctx)

    def nested_loop(outer_rows: Rows) -> Iterator[tuple]:
        right_rows = list(right.run(outer_rows))
        for left_row in left.run(outer_rows):
            matched = False
            for right_row in right_rows:
                combined_row = left_row + right_row
                if condition_fn(outer_rows + (combined_row,)):
                    matched = True
                    yield combined_row
            if is_left_join and not matched:
                yield left_row + pad
    return FromPlan(combined, nested_loop)


# ---------------------------------------------------------------------------
# Aggregation rewriting
# ---------------------------------------------------------------------------

class _AggregateRewriter:
    """Rewrites expressions over grouped input into slot references.

    Slots 0..G-1 hold the group keys, slots G.. hold aggregate results.
    """

    def __init__(self, group_exprs: list[ast.Expr],
                 outer_depth: int, scopes: list[RowSchema],
                 ctx: CompileContext) -> None:
        self.group_keys = {ast.node_key(expr): index
                           for index, expr in enumerate(group_exprs)}
        self.group_count = len(group_exprs)
        self.aggregates: list[ast.FunctionCall] = []
        self._agg_slots: dict[Any, int] = {}
        self.outer_depth = outer_depth
        self.scopes = scopes
        self.ctx = ctx

    def rewrite(self, expr: ast.Expr) -> ast.Expr:
        key = ast.node_key(expr)
        if key in self.group_keys:
            return ast.SlotRef(self.group_keys[key])
        if isinstance(expr, ast.FunctionCall) \
                and expr.name.upper() in AGGREGATE_NAMES:
            if key in self._agg_slots:
                slot = self._agg_slots[key]
            else:
                slot = self.group_count + len(self.aggregates)
                self.aggregates.append(expr)
                self._agg_slots[key] = slot
            return ast.SlotRef(slot)
        if isinstance(expr, ast.ColumnRef):
            depth, _position = resolve_column(expr, self.scopes)
            if depth < self.outer_depth:
                return expr  # correlated outer reference: constant per run
            raise ExecutionError(
                f"column {expr.display()!r} must appear in GROUP BY "
                "or be used in an aggregate")
        if isinstance(expr, (ast.Literal, ast.SlotRef)):
            return expr
        if isinstance(expr, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
            # Subqueries in grouped context may only reference group slots
            # through correlation, which we conservatively do not rewrite.
            return expr
        return self._rebuild(expr)

    def _rebuild(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, self.rewrite(expr.operand))
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(expr.op, self.rewrite(expr.left),
                                self.rewrite(expr.right))
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(self.rewrite(expr.operand), expr.negated)
        if isinstance(expr, ast.Like):
            return ast.Like(self.rewrite(expr.operand),
                            self.rewrite(expr.pattern), expr.negated)
        if isinstance(expr, ast.InList):
            return ast.InList(self.rewrite(expr.operand),
                              [self.rewrite(item) for item in expr.items],
                              expr.negated)
        if isinstance(expr, ast.Between):
            return ast.Between(self.rewrite(expr.operand),
                               self.rewrite(expr.low),
                               self.rewrite(expr.high), expr.negated)
        if isinstance(expr, ast.FunctionCall):
            return ast.FunctionCall(expr.name,
                                    [self.rewrite(arg) for arg in expr.args],
                                    expr.distinct, expr.star)
        if isinstance(expr, ast.CaseExpr):
            operand = (self.rewrite(expr.operand)
                       if expr.operand is not None else None)
            whens = [(self.rewrite(c), self.rewrite(r))
                     for c, r in expr.whens]
            else_result = (self.rewrite(expr.else_result)
                           if expr.else_result is not None else None)
            return ast.CaseExpr(operand, whens, else_result)
        if isinstance(expr, ast.Cast):
            return ast.Cast(self.rewrite(expr.operand), expr.type_name)
        raise NotSupportedError(
            f"cannot use {type(expr).__name__} in grouped query")


def _contains_aggregate(expr: ast.Expr | None) -> bool:
    if expr is None:
        return False
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.FunctionCall) \
                and node.name.upper() in AGGREGATE_NAMES:
            return True
    return False


# ---------------------------------------------------------------------------
# SELECT core compilation
# ---------------------------------------------------------------------------

def _substitute_order_targets(exprs: list[ast.Expr],
                              items: list[ast.SelectItem],
                              scopes: list[RowSchema]) -> list[ast.Expr]:
    """Resolve ORDER/GROUP BY ordinals and select-list aliases."""
    resolved: list[ast.Expr] = []
    for expr in exprs:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int) \
                and not isinstance(expr.value, bool):
            index = expr.value
            if index < 1 or index > len(items):
                raise ExecutionError(
                    f"ORDER/GROUP BY position {index} is out of range")
            item = items[index - 1]
            if item.is_star:
                raise ExecutionError(
                    "ORDER/GROUP BY position cannot reference '*'")
            resolved.append(item.expr)
            continue
        if isinstance(expr, ast.ColumnRef) and expr.qualifier is None:
            alias_matches = [item for item in items
                            if item.alias
                            and item.alias.lower() == expr.name.lower()]
            if len(alias_matches) == 1:
                # An output alias shadows input columns (PostgreSQL rule).
                resolved.append(alias_matches[0].expr)
                continue
        resolved.append(expr)
    return resolved


def _expand_items(items: list[ast.SelectItem],
                  from_schema: RowSchema) -> list[tuple[ast.SelectItem, list[int] | None]]:
    """Expand star items to column position lists."""
    expanded: list[tuple[ast.SelectItem, list[int] | None]] = []
    for item in items:
        if item.is_star:
            star: ast.Star = item.expr  # type: ignore[assignment]
            if star.qualifier is None:
                positions = list(range(len(from_schema)))
            else:
                positions = [
                    index for index, column in enumerate(from_schema.columns)
                    if (column.qualifier or "").lower()
                    == star.qualifier.lower()]
                if not positions:
                    raise UnknownColumnError(
                        f"no table named {star.qualifier!r} in FROM")
            expanded.append((item, positions))
        else:
            expanded.append((item, None))
    return expanded


# ---------------------------------------------------------------------------
# Vectorized scan + filter
# ---------------------------------------------------------------------------

class _VectorInput:
    """Batch-at-a-time input for one SELECT core.

    ``row_chunks(outer_rows)`` always works: it yields row-tuple chunks
    of the (kernel- and residual-) filtered scan, so any row operator
    can flatten it.  ``column_batches`` is the column-slice shape the
    vector aggregate and gather projection need; it is ``None`` when a
    residual row predicate exists (residuals evaluate on row tuples, so
    the columns would have to be rebuilt — the row path is cheaper).
    """

    __slots__ = ("row_chunks", "column_batches")

    def __init__(self, row_chunks, column_batches) -> None:
        self.row_chunks = row_chunks
        self.column_batches = column_batches


def _build_vector_input(core: ast.SelectCore, table: Table,
                        where_expr: ast.Expr | None,
                        scopes: list[RowSchema], ctx: CompileContext
                        ) -> tuple[_VectorInput, RowFn | None]:
    """Compile a vectorized scan (plus kernel filter) over *table*.

    Every WHERE conjunct either compiles to a mask kernel or stays on
    the row path as part of the *residual* predicate — a hybrid plan.
    Returns the input plus the compiled residual (``None`` when fully
    vectorized).
    """

    def resolve(ref: ast.ColumnRef):
        try:
            depth, position = resolve_column(ref, scopes, ctx)
        except UnknownColumnError:
            return None  # residual compile reports the error identically
        if depth != len(scopes) - 1:
            return None  # correlated outer reference: row path
        return position, table.schema.columns[position].data_type

    kernels = []
    residual: list[ast.Expr] = []
    if where_expr is not None:
        for conjunct in ast.conjuncts(where_expr):
            kernel = compile_filter_kernel(conjunct, resolve)
            if kernel is None:
                residual.append(conjunct)
                reason = fallback_reason(conjunct, resolve)
                if reason is not None:
                    ctx.note_fallback(render_expr(conjunct), reason)
            else:
                kernels.append(kernel)
    residual_expr = ast.conjoin(residual)
    residual_fn = (compile_predicate(residual_expr, scopes, ctx)
                   if residual_expr is not None else None)

    if not kernels:
        mask_fn = None
    elif len(kernels) == 1:
        mask_fn = kernels[0]
    else:
        def mask_fn(cols, _kernels=tuple(kernels)):
            mask = _kernels[0](cols)
            for kernel in _kernels[1:]:
                other = kernel(cols)
                mask = [a and b for a, b in zip(mask, other)]
            return mask

    ctx.note_vectorized("scan")
    scan_node = ctx.plan_node(core.from_clause)
    if scan_node is not None:
        scan_node.vectorized = True
    if kernels:
        ctx.note_vectorized("filter")
        filter_node = ctx.plan_node(core)
        if filter_node is not None:
            filter_node.vectorized = True
    hooks = ctx.exec_hooks
    scan_counter = ctx.counter_for(core.from_clause)
    core_counter = ctx.counter_for(core)

    # The generators read table state (including compaction-sensitive
    # iterators) at *run* time, never at compile time: the plan cache
    # re-executes compiled plans across mutations.
    def row_chunks(outer_rows: Rows) -> Iterator[list]:
        if mask_fn is None and residual_fn is None:
            # Unfiltered scan: one zip across the full columns beats
            # per-batch slicing, so this path has its own iterator.
            for chunk in table.iter_row_chunks(BATCH_SIZE):
                if scan_counter is not None:
                    scan_counter.count(len(chunk))
                if hooks is not None:
                    hooks.observe("scan", len(chunk))
                yield chunk
            return
        for cols in table.iter_batches(BATCH_SIZE):
            n = len(cols[0])
            if scan_counter is not None:
                scan_counter.count(n)
            if hooks is not None:
                hooks.observe("scan", n)
            if mask_fn is not None:
                mask = mask_fn(cols)
                kept = sum(mask)
                if not kept:
                    continue
                if kept < n:
                    cols = [list(itertools.compress(col, mask))
                            for col in cols]
                if hooks is not None:
                    hooks.observe("filter", kept)
            chunk = list(zip(*cols))
            if residual_fn is not None:
                chunk = [row for row in chunk
                         if residual_fn(outer_rows + (row,))]
                if not chunk:
                    continue
            if core_counter is not None:
                core_counter.count(len(chunk))
            yield chunk

    if residual_fn is not None:
        column_batches = None
    else:
        def column_batches(outer_rows: Rows) -> Iterator[list]:
            for cols in table.iter_batches(BATCH_SIZE):
                n = len(cols[0])
                if scan_counter is not None:
                    scan_counter.count(n)
                if hooks is not None:
                    hooks.observe("scan", n)
                if mask_fn is not None:
                    mask = mask_fn(cols)
                    kept = sum(mask)
                    if not kept:
                        continue
                    if kept < n:
                        cols = [list(itertools.compress(col, mask))
                                for col in cols]
                    if hooks is not None:
                        hooks.observe("filter", kept)
                    n = kept
                if core_counter is not None:
                    core_counter.count(n)
                yield cols

    return _VectorInput(row_chunks, column_batches), residual_fn


def _vector_aggregate_plan(rewriter: "_AggregateRewriter",
                           group_exprs: list[ast.Expr],
                           scopes: list[RowSchema],
                           from_schema: RowSchema):
    """Validate a GROUP BY / aggregate core for the vectorized path.

    Returns ``(key_positions, specs)`` for
    :func:`repro.relational.batch.run_vector_aggregate`, or ``None``
    when any group key or aggregate needs the row path (expression
    keys, unsupported aggregates, non-numeric SUM/AVG — the latter must
    keep raising ``TypeMismatchError`` from the row machinery).
    """
    key_positions: list[int] = []
    for expr in group_exprs:
        position = _innermost_position(expr, scopes)
        if position is None:
            return None
        key_positions.append(position)
    specs: list[tuple] = []
    for call in rewriter.aggregates:
        name = call.name.upper()
        if name == "COUNT" and call.star:
            if call.distinct:
                return None
            specs.append(("count*", None, False))
            continue
        if name not in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            return None
        if call.star or len(call.args) != 1:
            return None
        position = _innermost_position(call.args[0], scopes)
        if position is None:
            return None
        if name in ("SUM", "AVG"):
            data_type = from_schema.columns[position].data_type
            if data_type not in (DataType.INTEGER, DataType.REAL):
                return None
        specs.append((name.lower(), position, call.distinct))
    return key_positions, specs


def compile_core(core: ast.SelectCore, catalog: Catalog,
                 outer_scopes: list[RowSchema], ctx: CompileContext,
                 order_by: list[ast.OrderItem] | None = None) -> QueryPlan:
    order_by = order_by or []
    if core.from_clause is not None:
        _collect_bindings(core.from_clause, set())
        from_plan = compile_table_expr(
            core.from_clause, catalog, outer_scopes, ctx)
    else:
        from_plan = FromPlan(RowSchema([]),
                             lambda outer_rows: iter([()]))
    scopes = outer_scopes + [from_plan.schema]

    # WHERE, with a single-table index fast path for equality conjuncts.
    where_fn: Callable[[Rows], bool] | None = None
    index_probe: tuple[Any, RowFn] | None = None
    where_expr = core.where
    if where_expr is not None and isinstance(core.from_clause, ast.TableRef):
        table = catalog.table(core.from_clause.name)
        remaining = []
        for conjunct in ast.conjuncts(where_expr):
            if index_probe is None and isinstance(conjunct, ast.BinaryOp) \
                    and conjunct.op == "=":
                sides = [(conjunct.left, conjunct.right),
                         (conjunct.right, conjunct.left)]
                chosen = None
                for column_side, value_side in sides:
                    if isinstance(column_side, ast.ColumnRef) \
                            and isinstance(value_side, ast.Literal):
                        try:
                            depth, _pos = resolve_column(column_side, scopes)
                        except UnknownColumnError:
                            continue
                        if depth != len(scopes) - 1:
                            continue
                        index = table.find_index_on([column_side.name])
                        if index is not None:
                            chosen = (index, value_side.value)
                            break
                if chosen is not None:
                    index_probe = (chosen[0],
                                   lambda rows, v=chosen[1]: v)
                    continue
            remaining.append(conjunct)
        where_expr = ast.conjoin(remaining)
        if index_probe is not None:
            probe_table = table

    # Vectorized scan: batch the base table whenever storage is columnar
    # and nothing better (an index point probe) applies.  WHERE conjuncts
    # compile to mask kernels where possible; the rest stay on the row
    # path as a residual predicate over the surviving batches.
    batch: _VectorInput | None = None
    if ctx.vectorize and index_probe is None \
            and isinstance(core.from_clause, ast.TableRef):
        scan_table = catalog.table(core.from_clause.name)
        if isinstance(scan_table, Table):
            batch, _residual = _build_vector_input(
                core, scan_table, where_expr, scopes, ctx)

    if batch is not None:
        def input_rows(outer_rows: Rows) -> Iterator[tuple]:
            for chunk in batch.row_chunks(outer_rows):
                yield from chunk
    else:
        if where_expr is not None:
            where_fn = compile_predicate(where_expr, scopes, ctx)

        def input_rows(outer_rows: Rows) -> Iterator[tuple]:
            if index_probe is not None:
                index, value_fn = index_probe
                row_ids = index.lookup((value_fn(outer_rows),))
                source: Iterable[tuple] = [probe_table.row(row_id)
                                           for row_id in sorted(row_ids)]
            else:
                source = from_plan.run(outer_rows)
            if where_fn is None:
                yield from source
            else:
                for row in source:
                    if where_fn(outer_rows + (row,)):
                        yield row

        # Batch generators count their own rows (they bypass this
        # per-row wrapper); see _build_vector_input.
        core_counter = ctx.counter_for(core)
        if core_counter is not None:
            input_rows = _counted(input_rows, core_counter)

    has_aggregate = bool(core.group_by) or core.having is not None \
        or any(_contains_aggregate(item.expr) for item in core.items) \
        or any(_contains_aggregate(item.expr) for item in order_by)

    if has_aggregate:
        return _compile_aggregate_core(
            core, order_by, from_plan, scopes, input_rows, ctx,
            len(outer_scopes), batch)
    return _compile_plain_core(
        core, order_by, from_plan, scopes, input_rows, ctx, batch)


def _output_schema(expanded, from_schema: RowSchema) -> RowSchema:
    columns: list[ResultColumn] = []
    for item, star_positions in expanded:
        if star_positions is not None:
            for position in star_positions:
                source = from_schema.columns[position]
                columns.append(ResultColumn(
                    source.name, source.qualifier, source.data_type))
        else:
            qualifier = None
            if isinstance(item.expr, ast.ColumnRef) and not item.alias:
                qualifier = item.expr.qualifier
            columns.append(ResultColumn(item.output_name(), qualifier))
    return RowSchema(columns)


def _compile_plain_core(core: ast.SelectCore,
                        order_by: list[ast.OrderItem],
                        from_plan: FromPlan,
                        scopes: list[RowSchema],
                        input_rows: Callable[[Rows], Iterator[tuple]],
                        ctx: CompileContext,
                        batch: "_VectorInput | None" = None) -> QueryPlan:
    expanded = _expand_items(core.items, from_plan.schema)
    out_schema = _output_schema(expanded, from_plan.schema)

    item_fns: list[tuple[list[int] | None, RowFn | None]] = []
    for item, star_positions in expanded:
        if star_positions is not None:
            item_fns.append((star_positions, None))
        else:
            item_fns.append((None, compile_expr(item.expr, scopes, ctx)))

    # Vectorized projection: when every select item is a star or a plain
    # column of the scanned table, the batches pass through (identity)
    # or are gathered column-wise — no per-row projection function runs.
    # DISTINCT / ORDER BY / expression items use the row operators below
    # over the flattened batches (still a vectorized scan+filter).
    if batch is not None and not core.distinct and not order_by:
        positions: list[int] | None = []
        for item, star_positions in expanded:
            if star_positions is not None:
                positions.extend(star_positions)
            else:
                position = _innermost_position(item.expr, scopes)
                if position is None:
                    positions = None
                    break
                positions.append(position)
        chunk_stream = None
        hooks = ctx.exec_hooks
        if positions == list(range(len(from_plan.schema))):
            def chunk_stream(outer_rows: Rows) -> Iterator[list]:
                for chunk in batch.row_chunks(outer_rows):
                    if hooks is not None:
                        hooks.observe("project", len(chunk))
                    yield chunk
        elif positions is not None and batch.column_batches is not None:
            selected = positions

            def chunk_stream(outer_rows: Rows) -> Iterator[list]:
                for cols in batch.column_batches(outer_rows):
                    chunk = list(zip(*[cols[p] for p in selected]))
                    if hooks is not None:
                        hooks.observe("project", len(chunk))
                    yield chunk
        if chunk_stream is not None:
            ctx.note_vectorized("project")
            return QueryPlan(out_schema, chunks=chunk_stream)

    def project(outer_rows: Rows, row: tuple) -> tuple:
        values: list[Any] = []
        rows = outer_rows + (row,)
        for star_positions, fn in item_fns:
            if star_positions is not None:
                values.extend(row[position] for position in star_positions)
            else:
                values.append(fn(rows))
        return tuple(values)

    order_fns: list[tuple[RowFn, bool]] = []
    order_on_output = core.distinct
    if order_by:
        order_exprs = _substitute_order_targets(
            [item.expr for item in order_by], core.items, scopes)
        if order_on_output:
            output_scopes = [out_schema]
            for expr, item in zip(order_exprs, order_by):
                order_fns.append((compile_expr(expr, output_scopes, ctx),
                                  item.descending))
        else:
            for expr, item in zip(order_exprs, order_by):
                order_fns.append((compile_expr(expr, scopes, ctx),
                                  item.descending))

    def stream(outer_rows: Rows) -> Iterator[tuple]:
        if core.distinct:
            seen: set[tuple] = set()
            if not order_fns:
                # Fully streaming dedup: yield each new output as found.
                for row in input_rows(outer_rows):
                    output = project(outer_rows, row)
                    key = _norm_tuple(output)
                    if key not in seen:
                        seen.add(key)
                        yield output
                return
            results: list[tuple] = []
            for row in input_rows(outer_rows):
                output = project(outer_rows, row)
                key = _norm_tuple(output)
                if key not in seen:
                    seen.add(key)
                    results.append(output)
            results.sort(key=lambda output: tuple(
                sort_key(fn((output,)), descending)
                for fn, descending in order_fns))
            yield from results
            return
        if order_fns:
            # ORDER BY is a pipeline breaker: sort needs every row.
            pairs = [(row, project(outer_rows, row))
                     for row in input_rows(outer_rows)]
            pairs.sort(key=lambda pair: tuple(
                sort_key(fn(outer_rows + (pair[0],)), descending)
                for fn, descending in order_fns))
            for _row, output in pairs:
                yield output
            return
        for row in input_rows(outer_rows):
            yield project(outer_rows, row)

    return QueryPlan(out_schema, stream)


def _compile_aggregate_core(core: ast.SelectCore,
                            order_by: list[ast.OrderItem],
                            from_plan: FromPlan,
                            scopes: list[RowSchema],
                            input_rows: Callable[[Rows], Iterator[tuple]],
                            ctx: CompileContext,
                            outer_depth: int,
                            batch: "_VectorInput | None" = None) -> QueryPlan:
    for item in core.items:
        if item.is_star:
            raise ExecutionError("'*' cannot be used with GROUP BY")

    group_exprs = _substitute_order_targets(core.group_by, core.items, scopes)
    group_fns = [compile_expr(expr, scopes, ctx) for expr in group_exprs]

    rewriter = _AggregateRewriter(group_exprs, outer_depth, scopes, ctx)
    rewritten_items = [rewriter.rewrite(item.expr) for item in core.items]
    rewritten_having = (rewriter.rewrite(core.having)
                        if core.having is not None else None)
    order_exprs = _substitute_order_targets(
        [item.expr for item in order_by], core.items, scopes)
    rewritten_order = [rewriter.rewrite(expr) for expr in order_exprs]

    # Build aggregate machines and their argument evaluators.
    agg_specs = []
    for call in rewriter.aggregates:
        aggregate = make_aggregate(call.name, call.star, len(call.args))
        arg_fns = [compile_expr(arg, scopes, ctx) for arg in call.args]
        agg_specs.append((aggregate, arg_fns, call.distinct))

    slot_count = rewriter.group_count + len(agg_specs)
    slot_schema = RowSchema([
        ResultColumn(f"?slot{i}", None) for i in range(slot_count)])
    slot_scopes = scopes[:outer_depth] + [slot_schema]

    item_fns = [compile_expr(expr, slot_scopes, ctx)
                for expr in rewritten_items]
    having_fn = (compile_predicate(rewritten_having, slot_scopes, ctx)
                 if rewritten_having is not None else None)
    order_fns = [(compile_expr(expr, slot_scopes, ctx), item.descending)
                 for expr, item in zip(rewritten_order, order_by)]

    out_schema = RowSchema([
        ResultColumn(item.output_name(), None) for item in core.items])

    def finish(slot_rows: list[tuple], outer_rows: Rows) -> list[tuple]:
        """HAVING / ORDER BY / projection / DISTINCT over group slot
        rows — shared by the row and vectorized aggregation paths."""
        prefix = outer_rows[:outer_depth]
        if having_fn is not None:
            slot_rows = [slot_row for slot_row in slot_rows
                         if having_fn(prefix + (slot_row,))]
        if order_fns:
            slot_rows.sort(key=lambda slot_row: tuple(
                sort_key(fn(prefix + (slot_row,)), descending)
                for fn, descending in order_fns))
        results = [tuple(fn(prefix + (slot_row,)) for fn in item_fns)
                   for slot_row in slot_rows]
        if core.distinct:
            seen: set[tuple] = set()
            deduped = []
            for output in results:
                key = _norm_tuple(output)
                if key not in seen:
                    seen.add(key)
                    deduped.append(output)
            results = deduped
        return results

    # Vectorized aggregation: plain-column group keys and the classic
    # aggregates accumulate straight off column batches.  Anything
    # fancier (expression keys, GROUP_CONCAT, non-numeric SUM, a
    # residual row predicate upstream) keeps the row loop below.
    vector_plan = None
    if batch is not None and batch.column_batches is not None:
        vector_plan = _vector_aggregate_plan(
            rewriter, group_exprs, scopes, from_plan.schema)
    if vector_plan is not None:
        key_positions, vector_specs = vector_plan
        ctx.note_vectorized("aggregate")
        agg_node = ctx.agg_node(core)
        if agg_node is not None:
            agg_node.vectorized = True
        hooks = ctx.exec_hooks

        def stream(outer_rows: Rows) -> Iterator[tuple]:
            slot_rows = run_vector_aggregate(
                batch.column_batches(outer_rows), key_positions,
                vector_specs, hooks)
            yield from finish(slot_rows, outer_rows)

        return QueryPlan(out_schema, stream)

    def stream(outer_rows: Rows) -> Iterator[tuple]:
        # Aggregation is a pipeline breaker: every input row must be
        # seen before any group result exists.
        groups: dict[tuple, tuple[tuple, list[Any], list[set]]] = {}
        for row in input_rows(outer_rows):
            rows = outer_rows + (row,)
            key_values = tuple(fn(rows) for fn in group_fns)
            key = _norm_tuple(key_values)
            entry = groups.get(key)
            if entry is None:
                states = [aggregate.initial()
                          for aggregate, _args, _distinct in agg_specs]
                distinct_seen: list[set] = [set() for _spec in agg_specs]
                entry = (key_values, states, distinct_seen)
                groups[key] = entry
            _key_values, states, distinct_seen = entry
            for index, (aggregate, arg_fns, distinct) in enumerate(agg_specs):
                args = tuple(fn(rows) for fn in arg_fns)
                if distinct:
                    marker = _norm_tuple(args)
                    if marker in distinct_seen[index]:
                        continue
                    distinct_seen[index].add(marker)
                states[index] = aggregate.step(states[index], args)
        if not groups and not group_fns:
            states = [aggregate.initial()
                      for aggregate, _args, _distinct in agg_specs]
            groups[()] = ((), states, [])

        slot_rows: list[tuple] = []
        for key_values, states, _seen in groups.values():
            finals = tuple(
                aggregate.final(state)
                for (aggregate, _a, _d), state in zip(agg_specs, states))
            slot_rows.append(tuple(key_values) + finals)
        yield from finish(slot_rows, outer_rows)

    return QueryPlan(out_schema, stream)


# ---------------------------------------------------------------------------
# Query-level compilation (set operations, ORDER BY, LIMIT)
# ---------------------------------------------------------------------------

def compile_query(query: ast.SelectQuery, catalog: Catalog,
                  outer_scopes: list[RowSchema] | None = None,
                  ctx: CompileContext | None = None,
                  planned=None, vectorize: bool = True,
                  exec_hooks=None) -> QueryPlan:
    outer_scopes = outer_scopes or []
    top_level = ctx is None
    if top_level:
        ctx = _make_context(catalog, planned, vectorize, exec_hooks)

    limit_fn = (compile_expr(query.limit, outer_scopes, ctx)
                if query.limit is not None else None)
    offset_fn = (compile_expr(query.offset, outer_scopes, ctx)
                 if query.offset is not None else None)

    if not query.is_compound:
        core_plan = compile_core(query.core, catalog, outer_scopes, ctx,
                                 order_by=query.order_by)

        def stream_simple(outer_rows: Rows) -> Iterator[tuple]:
            return _stream_limit(core_plan.stream(outer_rows), outer_rows,
                                 limit_fn, offset_fn)

        # A chunked core stays chunked through an unbounded query, so
        # cursors that materialize (run()) skip per-row generators;
        # LIMIT/OFFSET always go through the flattened row stream.
        chunks = core_plan.chunks \
            if limit_fn is None and offset_fn is None else None
        return _finish_plan(
            QueryPlan(core_plan.schema, stream_simple, chunks=chunks),
            ctx, top_level)

    plans = [compile_core(query.core, catalog, outer_scopes, ctx)]
    for _op, core in query.compounds:
        plans.append(compile_core(core, catalog, outer_scopes, ctx))
    width = len(plans[0].schema)
    for plan in plans[1:]:
        if len(plan.schema) != width:
            raise ExecutionError(
                "set operation operands must have the same column count")
    schema = plans[0].schema
    operations = [op for op, _core in query.compounds]

    order_fns: list[tuple[RowFn, bool]] = []
    if query.order_by:
        fake_items = [ast.SelectItem(ast.ColumnRef(column.name), None)
                      for column in schema.columns]
        order_exprs = _substitute_order_targets(
            [item.expr for item in query.order_by], fake_items, [schema])
        for expr, item in zip(order_exprs, query.order_by):
            order_fns.append((compile_expr(expr, [schema], ctx),
                              item.descending))

    def merged_rows(outer_rows: Rows) -> Iterator[tuple]:
        if not order_fns and all(op == "UNION ALL" for op in operations):
            # Pure concatenation streams: operand k+1 is never started
            # until operand k is exhausted (or LIMIT stops the pull).
            for plan in plans:
                yield from plan.stream(outer_rows)
            return
        current = plans[0].run(outer_rows)
        for operation, plan in zip(operations, plans[1:]):
            other = plan.run(outer_rows)
            if operation == "UNION ALL":
                current = current + other
            elif operation == "UNION":
                seen = set()
                merged = []
                for row in current + other:
                    key = _norm_tuple(row)
                    if key not in seen:
                        seen.add(key)
                        merged.append(row)
                current = merged
            elif operation == "INTERSECT":
                other_keys = {_norm_tuple(row) for row in other}
                seen = set()
                merged = []
                for row in current:
                    key = _norm_tuple(row)
                    if key in other_keys and key not in seen:
                        seen.add(key)
                        merged.append(row)
                current = merged
            elif operation == "EXCEPT":
                other_keys = {_norm_tuple(row) for row in other}
                seen = set()
                merged = []
                for row in current:
                    key = _norm_tuple(row)
                    if key not in other_keys and key not in seen:
                        seen.add(key)
                        merged.append(row)
                current = merged
            else:  # pragma: no cover - parser prevents this
                raise NotSupportedError(f"unknown set operation {operation}")
        if order_fns:
            current = sorted(current, key=lambda row: tuple(
                sort_key(fn((row,)), descending)
                for fn, descending in order_fns))
        yield from current

    def stream_compound(outer_rows: Rows) -> Iterator[tuple]:
        return _stream_limit(merged_rows(outer_rows), outer_rows,
                             limit_fn, offset_fn)

    return _finish_plan(QueryPlan(schema, stream_compound), ctx, top_level)


def _finish_plan(plan: QueryPlan, ctx: CompileContext,
                 top_level: bool) -> QueryPlan:
    plan.vectorized_ops = ctx.vectorized_ops
    plan.vectorized_fallbacks = ctx.vectorized_fallbacks
    if top_level and ctx.planned is not None and ctx.vectorized_ops:
        note = "vectorized: " + ", ".join(sorted(ctx.vectorized_ops))
        if ctx.vectorized_fallbacks:
            note += "; fallback: " + "; ".join(
                f"{expression} ({reason})"
                for expression, reason in ctx.vectorized_fallbacks)
        ctx.planned.notes.append(note)
    return plan


def _bound_value(fn: RowFn, outer_rows: Rows, clause: str) -> int | None:
    """Evaluate a LIMIT/OFFSET expression and validate it.

    NULL means "no bound"; anything that is not a non-negative integer
    is a user error and raises :class:`ExecutionError` (previously a
    negative value sliced silently and a non-integer raised a raw
    ``TypeError``).
    """
    value = fn(outer_rows)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ExecutionError(
            f"{clause} must be a non-negative integer, got {value!r}")
    if value < 0:
        raise ExecutionError(
            f"{clause} must be a non-negative integer, got {value}")
    return value


def _stream_limit(rows: Iterator[tuple], outer_rows: Rows,
                  limit_fn: RowFn | None,
                  offset_fn: RowFn | None) -> Iterator[tuple]:
    """Lazy OFFSET/LIMIT: pulls ``offset + limit`` rows then stops,
    closing the source stream (early termination)."""
    start = 0
    if offset_fn is not None:
        offset_value = _bound_value(offset_fn, outer_rows, "OFFSET")
        if offset_value is not None:
            start = offset_value
    stop = None
    if limit_fn is not None:
        limit_value = _bound_value(limit_fn, outer_rows, "LIMIT")
        if limit_value is not None:
            stop = start + limit_value
    try:
        yield from itertools.islice(rows, start, stop)
    finally:
        closer = getattr(rows, "close", None)
        if closer is not None:
            closer()


def _apply_limit(rows: list[tuple], outer_rows: Rows,
                 limit_fn: RowFn | None,
                 offset_fn: RowFn | None) -> list[tuple]:
    """Materialized OFFSET/LIMIT (same validation as the streaming path)."""
    return list(_stream_limit(iter(rows), outer_rows, limit_fn, offset_fn))
