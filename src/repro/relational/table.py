"""Columnar table storage with constraint enforcement and index maintenance.

Hot storage is one :class:`~repro.relational.vectors.ColumnVector` per
column — a typed value list plus a null bitmap — instead of the old
``dict[row_id, tuple]`` heap.  The stable-row-id contract that indexes,
DML and the WAL rely on is preserved: every live row keeps the id it was
inserted with, deletes flip a bit in a deleted bitmap instead of
shifting slots, and a slot map translates ids to positions.  When more
than a quarter of the slots are dead the table compacts in place
(row ids survive, slots are renumbered — nothing outside this class ever
sees a slot).

Row-oriented accessors (``rows`` / ``rows_with_ids`` / ``row``) keep
their exact shapes, so snapshots, ANALYZE fallbacks, replicas and every
other consumer are unaffected.  The executor's batch path uses the new
surface: ``iter_batches`` (column-slice batches for kernel filters and
vector aggregates), ``iter_row_chunks`` (row-tuple chunks, the fastest
full-scan shape) and ``column_values`` (one live column for ANALYZE).
"""

from __future__ import annotations

from array import array
from itertools import compress, islice
from operator import not_
from typing import Any, Iterable, Iterator

from .batch import BATCH_SIZE
from .errors import ConstraintViolation, SchemaError
from .indexes import HashIndex, IndexType, build_index
from .schema import TableSchema
from .types import coerce_value
from .vectors import ColumnVector

#: Compaction triggers when both hold: enough dead slots to be worth a
#: rebuild, and dead slots outnumbering a quarter of the heap.
COMPACT_MIN_DELETED = 64
COMPACT_DEAD_FRACTION = 4  # dead * 4 > total  <=>  >25% dead


class Table:
    """An in-memory columnar table plus the indexes defined over it.

    Values live in per-column vectors addressed by *slot*; a parallel
    ``row_id`` array and deleted bitmap give every row a stable id for
    the life of the table, so deletes never shift other rows and indexes
    can reference rows stably.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._columns = [ColumnVector(column.data_type)
                         for column in schema.columns]
        self._row_ids = array("q")
        self._deleted = bytearray()
        self._deleted_count = 0
        self._slots: dict[int, int] = {}   # row_id -> slot, live rows only
        self._next_row_id = 0
        self.indexes: dict[str, IndexType] = {}
        self._pk_index: HashIndex | None = None
        if schema.primary_key:
            self._pk_index = HashIndex(
                f"__pk_{schema.name}", schema.name,
                list(schema.primary_key), unique=True)
        self._unique_indexes: list[HashIndex] = []
        for column in schema.columns:
            if column.unique and not column.primary_key:
                self._unique_indexes.append(HashIndex(
                    f"__uq_{schema.name}_{column.name}", schema.name,
                    [column.name], unique=True))

    # -- basic accessors ---------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._slots)

    def rows(self) -> Iterator[tuple]:
        """Iterate over row tuples (order of insertion)."""
        columns = [column.values for column in self._columns]
        if self._deleted_count == 0:
            yield from zip(*columns)
        else:
            yield from compress(zip(*columns), map(not_, self._deleted))

    def rows_with_ids(self) -> Iterator[tuple[int, tuple]]:
        columns = [column.values for column in self._columns]
        pairs = zip(self._row_ids, zip(*columns))
        if self._deleted_count == 0:
            yield from pairs
        else:
            yield from compress(pairs, map(not_, self._deleted))

    def row(self, row_id: int) -> tuple:
        slot = self._slots[row_id]
        return tuple(column.values[slot] for column in self._columns)

    # -- batch scan surface --------------------------------------------------

    def iter_batches(self, size: int = BATCH_SIZE) -> Iterator[list]:
        """Column-slice batches of live rows.

        Each batch is a list of per-column value lists, all the same
        length — the shape predicate kernels and the vector aggregate
        consume.  Dead slots are squeezed out per batch, so consumers
        never see the deleted bitmap.
        """
        columns = [column.values for column in self._columns]
        total = len(self._row_ids)
        if self._deleted_count == 0:
            for start in range(0, total, size):
                end = start + size
                yield [column[start:end] for column in columns]
            return
        deleted = self._deleted
        for start in range(0, total, size):
            end = start + size
            window = deleted[start:end]
            if 1 not in window:
                yield [column[start:end] for column in columns]
                continue
            live = [flag == 0 for flag in window]
            batch = [list(compress(column[start:end], live))
                     for column in columns]
            if batch[0]:
                yield batch

    def iter_row_chunks(self, size: int = BATCH_SIZE) -> Iterator[list]:
        """Row-tuple chunks of live rows — the full-scan fast path.

        One ``zip`` across the whole columns beats per-batch slicing
        when no mask will be applied, so unfiltered scans use this.
        """
        source: Iterator[tuple] = zip(*[column.values
                                        for column in self._columns])
        if self._deleted_count:
            source = compress(source, map(not_, self._deleted))
        while True:
            chunk = list(islice(source, size))
            if not chunk:
                return
            yield chunk

    def column_values(self, position: int) -> list:
        """Live values of one column, in row order (ANALYZE reads this)."""
        values = self._columns[position].values
        if self._deleted_count == 0:
            return list(values)
        return list(compress(values, map(not_, self._deleted)))

    # -- constraint helpers --------------------------------------------------

    def _key_values(self, row: tuple, column_names: Iterable[str]) -> tuple:
        return tuple(row[self.schema.position_of(name)]
                     for name in column_names)

    def _check_and_prepare(self, values: dict[str, Any]) -> tuple:
        """Coerce an insert dict to a full row tuple, enforcing NOT NULL."""
        row = []
        for column in self.schema.columns:
            if column.name in values:
                value = coerce_value(values[column.name], column.data_type)
            elif column.has_default:
                value = coerce_value(column.default, column.data_type)
            else:
                value = None
            if value is None and not column.nullable:
                raise ConstraintViolation(
                    f"column {column.name!r} of table {self.name!r} "
                    f"is NOT NULL")
            row.append(value)
        return tuple(row)

    def _constraint_indexes(self) -> list[HashIndex]:
        constraint_indexes = list(self._unique_indexes)
        if self._pk_index is not None:
            constraint_indexes.append(self._pk_index)
        return constraint_indexes

    def _all_indexes(self) -> list[IndexType]:
        return self._constraint_indexes() + list(self.indexes.values())

    def _pk_values_present(self, row: tuple) -> None:
        for name in self.schema.primary_key:
            if row[self.schema.position_of(name)] is None:
                raise ConstraintViolation(
                    f"primary key column {name!r} may not be NULL")

    # -- mutation ------------------------------------------------------------

    def insert_row(self, values: dict[str, Any]) -> int:
        """Insert one row given a column-name -> value mapping."""
        unknown = [key for key in values if not self.schema.has_column(key)]
        if unknown:
            raise SchemaError(
                f"table {self.name!r} has no column {unknown[0]!r}")
        row = self._check_and_prepare(values)
        if self._pk_index is not None:
            self._pk_values_present(row)
        row_id = self._next_row_id
        inserted: list[tuple[IndexType, tuple]] = []
        try:
            for index in self._all_indexes():
                key = self._key_values(row, index.column_names)
                index.insert(row_id, key)
                inserted.append((index, key))
        except ConstraintViolation:
            for index, key in inserted:
                index.delete(row_id, key)
            raise
        self._slots[row_id] = len(self._row_ids)
        self._row_ids.append(row_id)
        self._deleted.append(0)
        for column, value in zip(self._columns, row):
            column.append(value)
        self._next_row_id += 1
        return row_id

    def insert_tuple(self, row: Iterable[Any]) -> int:
        """Insert a positional row (must cover every column)."""
        row = list(row)
        if len(row) != len(self.schema):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.schema)} values, "
                f"got {len(row)}")
        values = dict(zip(self.schema.column_names(), row))
        return self.insert_row(values)

    def delete_row(self, row_id: int) -> None:
        slot = self._slots[row_id]
        row = tuple(column.values[slot] for column in self._columns)
        for index in self._all_indexes():
            index.delete(row_id, self._key_values(row, index.column_names))
        del self._slots[row_id]
        self._deleted[slot] = 1
        self._deleted_count += 1
        if self._deleted_count > COMPACT_MIN_DELETED and \
                self._deleted_count * COMPACT_DEAD_FRACTION \
                > len(self._row_ids):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the vectors without dead slots (row ids survive)."""
        live = [flag == 0 for flag in self._deleted]
        for column in self._columns:
            column.rebuild(live)
        self._row_ids = array("q", compress(self._row_ids, live))
        self._deleted = bytearray(len(self._row_ids))
        self._deleted_count = 0
        self._slots = {row_id: slot
                       for slot, row_id in enumerate(self._row_ids)}

    def update_row(self, row_id: int, changes: dict[str, Any]) -> None:
        """Apply column changes to one row, re-checking constraints."""
        slot = self._slots[row_id]
        old_row = tuple(column.values[slot] for column in self._columns)
        values = dict(zip(self.schema.column_names(), old_row))
        for name, value in changes.items():
            if not self.schema.has_column(name):
                raise SchemaError(
                    f"table {self.name!r} has no column {name!r}")
            values[name] = value
        new_row = self._check_and_prepare(values)
        if self._pk_index is not None:
            self._pk_values_present(new_row)
        # Remove old index entries, then insert new ones; roll back on failure.
        for index in self._all_indexes():
            index.delete(row_id, self._key_values(old_row, index.column_names))
        inserted: list[tuple[IndexType, tuple]] = []
        try:
            for index in self._all_indexes():
                key = self._key_values(new_row, index.column_names)
                index.insert(row_id, key)
                inserted.append((index, key))
        except ConstraintViolation:
            for index, key in inserted:
                index.delete(row_id, key)
            for index in self._all_indexes():
                index.insert(
                    row_id, self._key_values(old_row, index.column_names))
            raise
        for column, value in zip(self._columns, new_row):
            column.set(slot, value)

    def truncate(self) -> None:
        for column in self._columns:
            column.clear()
        self._row_ids = array("q")
        self._deleted = bytearray()
        self._deleted_count = 0
        self._slots.clear()
        for index in self._all_indexes():
            index.clear()

    # -- secondary index management -------------------------------------------

    def create_index(self, name: str, column_names: list[str],
                     unique: bool = False, kind: str = "hash") -> IndexType:
        if name in self.indexes:
            raise SchemaError(f"index {name!r} already exists")
        for column_name in column_names:
            if not self.schema.has_column(column_name):
                raise SchemaError(
                    f"table {self.name!r} has no column {column_name!r}")
        index = build_index(kind, name, self.name, column_names, unique)
        for row_id, row in self.rows_with_ids():
            index.insert(row_id, self._key_values(row, column_names))
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise SchemaError(f"index {name!r} does not exist")
        del self.indexes[name]

    def find_index_on(self, column_names: list[str]) -> IndexType | None:
        """Find any index (incl. PK/unique) covering exactly these columns."""
        wanted = [name.lower() for name in column_names]
        for index in self._all_indexes():
            if [c.lower() for c in index.column_names] == wanted:
                return index
        return None


def find_probe_index(table, column_names: list[str]
                     ) -> tuple[IndexType, list[int]] | None:
    """The index (plus covered key positions) an equi-join probe can use
    on the inner table *table*: the full key list when an index covers
    it exactly, otherwise any single key column (the remaining keys are
    then checked per candidate row).  Shared by the executor's join
    compilation and the planner's cost model so both agree on whether a
    probe is possible."""
    finder = getattr(table, "find_index_on", None)
    if finder is None:
        return None
    index = finder(list(column_names))
    if index is not None:
        return index, list(range(len(column_names)))
    for position, name in enumerate(column_names):
        index = finder([name])
        if index is not None:
            return index, [position]
    return None
