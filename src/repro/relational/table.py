"""Heap table storage with constraint enforcement and index maintenance."""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from .errors import ConstraintViolation, SchemaError
from .indexes import HashIndex, IndexType, build_index
from .schema import TableSchema
from .types import coerce_value


class Table:
    """An in-memory heap of rows plus the indexes defined over it.

    Rows are stored as tuples keyed by a monotonically increasing row id, so
    deletes never shift other rows and indexes can reference rows stably.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: dict[int, tuple] = {}
        self._next_row_id = 0
        self.indexes: dict[str, IndexType] = {}
        self._pk_index: HashIndex | None = None
        if schema.primary_key:
            self._pk_index = HashIndex(
                f"__pk_{schema.name}", schema.name,
                list(schema.primary_key), unique=True)
        self._unique_indexes: list[HashIndex] = []
        for column in schema.columns:
            if column.unique and not column.primary_key:
                self._unique_indexes.append(HashIndex(
                    f"__uq_{schema.name}_{column.name}", schema.name,
                    [column.name], unique=True))

    # -- basic accessors ---------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[tuple]:
        """Iterate over row tuples (order of insertion)."""
        return iter(self._rows.values())

    def rows_with_ids(self) -> Iterator[tuple[int, tuple]]:
        return iter(self._rows.items())

    def row(self, row_id: int) -> tuple:
        return self._rows[row_id]

    # -- constraint helpers --------------------------------------------------

    def _key_values(self, row: tuple, column_names: Iterable[str]) -> tuple:
        return tuple(row[self.schema.position_of(name)]
                     for name in column_names)

    def _check_and_prepare(self, values: dict[str, Any]) -> tuple:
        """Coerce an insert dict to a full row tuple, enforcing NOT NULL."""
        row = []
        for column in self.schema.columns:
            if column.name in values:
                value = coerce_value(values[column.name], column.data_type)
            elif column.has_default:
                value = coerce_value(column.default, column.data_type)
            else:
                value = None
            if value is None and not column.nullable:
                raise ConstraintViolation(
                    f"column {column.name!r} of table {self.name!r} "
                    f"is NOT NULL")
            row.append(value)
        return tuple(row)

    def _constraint_indexes(self) -> list[HashIndex]:
        constraint_indexes = list(self._unique_indexes)
        if self._pk_index is not None:
            constraint_indexes.append(self._pk_index)
        return constraint_indexes

    def _all_indexes(self) -> list[IndexType]:
        return self._constraint_indexes() + list(self.indexes.values())

    def _pk_values_present(self, row: tuple) -> None:
        for name in self.schema.primary_key:
            if row[self.schema.position_of(name)] is None:
                raise ConstraintViolation(
                    f"primary key column {name!r} may not be NULL")

    # -- mutation ------------------------------------------------------------

    def insert_row(self, values: dict[str, Any]) -> int:
        """Insert one row given a column-name -> value mapping."""
        unknown = [key for key in values if not self.schema.has_column(key)]
        if unknown:
            raise SchemaError(
                f"table {self.name!r} has no column {unknown[0]!r}")
        row = self._check_and_prepare(values)
        if self._pk_index is not None:
            self._pk_values_present(row)
        row_id = self._next_row_id
        inserted: list[tuple[IndexType, tuple]] = []
        try:
            for index in self._all_indexes():
                key = self._key_values(row, index.column_names)
                index.insert(row_id, key)
                inserted.append((index, key))
        except ConstraintViolation:
            for index, key in inserted:
                index.delete(row_id, key)
            raise
        self._rows[row_id] = row
        self._next_row_id += 1
        return row_id

    def insert_tuple(self, row: Iterable[Any]) -> int:
        """Insert a positional row (must cover every column)."""
        row = list(row)
        if len(row) != len(self.schema):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.schema)} values, "
                f"got {len(row)}")
        values = dict(zip(self.schema.column_names(), row))
        return self.insert_row(values)

    def delete_row(self, row_id: int) -> None:
        row = self._rows.pop(row_id)
        for index in self._all_indexes():
            index.delete(row_id, self._key_values(row, index.column_names))

    def update_row(self, row_id: int, changes: dict[str, Any]) -> None:
        """Apply column changes to one row, re-checking constraints."""
        old_row = self._rows[row_id]
        values = dict(zip(self.schema.column_names(), old_row))
        for name, value in changes.items():
            if not self.schema.has_column(name):
                raise SchemaError(
                    f"table {self.name!r} has no column {name!r}")
            values[name] = value
        new_row = self._check_and_prepare(values)
        if self._pk_index is not None:
            self._pk_values_present(new_row)
        # Remove old index entries, then insert new ones; roll back on failure.
        for index in self._all_indexes():
            index.delete(row_id, self._key_values(old_row, index.column_names))
        inserted: list[tuple[IndexType, tuple]] = []
        try:
            for index in self._all_indexes():
                key = self._key_values(new_row, index.column_names)
                index.insert(row_id, key)
                inserted.append((index, key))
        except ConstraintViolation:
            for index, key in inserted:
                index.delete(row_id, key)
            for index in self._all_indexes():
                index.insert(
                    row_id, self._key_values(old_row, index.column_names))
            raise
        self._rows[row_id] = new_row

    def truncate(self) -> None:
        self._rows.clear()
        for index in self._all_indexes():
            if isinstance(index, HashIndex):
                index._buckets.clear()
            else:
                index._entries.clear()

    # -- secondary index management -------------------------------------------

    def create_index(self, name: str, column_names: list[str],
                     unique: bool = False, kind: str = "hash") -> IndexType:
        if name in self.indexes:
            raise SchemaError(f"index {name!r} already exists")
        for column_name in column_names:
            if not self.schema.has_column(column_name):
                raise SchemaError(
                    f"table {self.name!r} has no column {column_name!r}")
        index = build_index(kind, name, self.name, column_names, unique)
        for row_id, row in self._rows.items():
            index.insert(row_id, self._key_values(row, column_names))
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise SchemaError(f"index {name!r} does not exist")
        del self.indexes[name]

    def find_index_on(self, column_names: list[str]) -> IndexType | None:
        """Find any index (incl. PK/unique) covering exactly these columns."""
        wanted = [name.lower() for name in column_names]
        for index in self._all_indexes():
            if [c.lower() for c in index.column_names] == wanted:
                return index
        return None


def find_probe_index(table, column_names: list[str]
                     ) -> tuple[IndexType, list[int]] | None:
    """The index (plus covered key positions) an equi-join probe can use
    on the inner table *table*: the full key list when an index covers
    it exactly, otherwise any single key column (the remaining keys are
    then checked per candidate row).  Shared by the executor's join
    compilation and the planner's cost model so both agree on whether a
    probe is possible."""
    finder = getattr(table, "find_index_on", None)
    if finder is None:
        return None
    index = finder(list(column_names))
    if index is not None:
        return index, list(range(len(column_names)))
    for position, name in enumerate(column_names):
        index = finder([name])
        if index is not None:
            return index, [position]
    return None
