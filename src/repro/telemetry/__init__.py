"""repro.telemetry — metrics, query tracing and the slow-query log.

The subsystem follows the durability playbook: core layers never import
it.  Instead every instrumentable component carries a ``telemetry``
attribute defaulting to ``None`` and an ``attach_telemetry`` method;
the session layer (``repro.connect(telemetry=...)``) and
``CrossePlatform(telemetry=...)`` create one :class:`Telemetry` bundle
and push it down the object graph.  When the attribute is ``None`` —
the default — every instrumented call site reduces to a single
``is None`` test.

The bundle ties together:

* :class:`MetricsRegistry` — counters / gauges / histograms with
  Prometheus-style labels and text exposition (``repro_*`` namespace);
* :class:`Tracer` — per-query span trees propagated via
  ``contextvars`` so spans survive generator-based streaming and
  federation worker threads;
* :class:`SlowQueryLog` — ring buffer of span tree + plan for queries
  over a configurable threshold.

REST surface (when a ``CrosseRestService`` fronts a telemetry-enabled
platform): ``GET /api/v1/metrics`` (JSON, or Prometheus text with
``?format=prometheus``), ``GET /api/v1/traces/{query_id}``,
``GET /api/v1/slow_queries``.
"""

from __future__ import annotations

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .options import DEFAULT_LATENCY_BUCKETS, TelemetryOptions
from .slowlog import SlowQueryEntry, SlowQueryLog
from .trace import Span, Tracer

__all__ = [
    "Telemetry", "TelemetryOptions", "create_telemetry",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "Tracer", "Span", "SlowQueryLog", "SlowQueryEntry",
    "DEFAULT_LATENCY_BUCKETS",
]


class Telemetry:
    """The live bundle: one registry + tracer + slow-query log.

    Shared by every component of one platform/session graph, so
    cross-layer metrics (a federation fragment shipped on behalf of a
    user query) all land in one place.
    """

    def __init__(self, options: TelemetryOptions | None = None) -> None:
        self.options = options or TelemetryOptions()
        self.metrics = MetricsRegistry(
            default_buckets=self.options.latency_buckets)
        self.tracer = Tracer(
            retention=self.options.trace_retention,
            max_spans=self.options.max_spans_per_trace)
        self.slow_queries = SlowQueryLog(
            threshold_s=self.options.slow_query_threshold_s,
            size=self.options.slow_query_log_size)
        # Pre-created hot-path instruments (unlabelled families resolve
        # to their single child, so these are direct references).
        self._query_seconds = self.metrics.histogram(
            "repro_query_seconds",
            "End-to-end wall time of session queries",
            labels=("backend",))
        self._queries_total = self.metrics.counter(
            "repro_queries_total",
            "Queries executed through the session layer",
            labels=("backend", "user"))
        self._slow_total = self.metrics.counter(
            "repro_slow_queries_total",
            "Queries that crossed the slow-query threshold")

    # -- convenience pass-throughs --------------------------------------

    def span(self, name: str, **attrs):
        """Shortcut for ``tracer.span`` — the common call site shape is
        ``with (tel.span(...) if tel is not None else _NOOP):``."""
        return self.tracer.span(name, **attrs)

    def record_query(self, root, *, backend: str, statement=None,
                     user=None, plan=None, rows=None) -> None:
        """Fold a finished root span into metrics + the slow-query log."""
        wall = root.wall_s if root.wall_s is not None else 0.0
        self._query_seconds.labels(backend).observe(wall)
        self._queries_total.labels(backend, user or "").inc()
        if self.slow_queries.should_record(wall):
            self._slow_total.inc()
            self.slow_queries.record(SlowQueryEntry(
                query_id=root.query_id or "",
                statement=statement,
                user=user,
                wall_s=wall,
                trace=root.to_dict(),
                plan=plan,
                rows=rows,
            ))


def create_telemetry(spec) -> Telemetry | None:
    """Normalise the ``telemetry=`` argument accepted by ``connect()``
    and ``CrossePlatform``:

    * ``None`` / ``False`` — telemetry off (returns None);
    * ``True`` — on, with default options;
    * a :class:`TelemetryOptions` — on iff ``options.enabled``;
    * a :class:`Telemetry` bundle — used as-is (lets several platforms
      share one registry).
    """
    if spec is None or spec is False:
        return None
    if isinstance(spec, Telemetry):
        return spec
    if spec is True:
        return Telemetry()
    if isinstance(spec, TelemetryOptions):
        return Telemetry(spec) if spec.enabled else None
    raise TypeError(
        "telemetry must be None, a bool, TelemetryOptions, or a "
        f"Telemetry bundle, not {type(spec).__name__}")
