"""Configuration for the telemetry subsystem.

Mirrors :class:`repro.durability.DurabilityOptions`: a frozen dataclass
validated at construction, passed to ``repro.connect(telemetry=...)`` or
the ``CrossePlatform`` constructor.  Telemetry is **off by default** —
no options object means no registry, no tracer, and the instrumented
code paths reduce to a single ``is None`` check.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

#: Default latency histogram buckets (seconds) — log-ish spacing from
#: 100 µs to 10 s, matching the range observed across the bench suite.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


@dataclass(frozen=True)
class TelemetryOptions:
    """Tuning knobs for metrics, tracing and the slow-query log.

    enabled
        Master switch.  ``TelemetryOptions(enabled=False)`` behaves
        exactly like passing no telemetry at all.
    slow_query_threshold_s
        Root spans whose wall time exceeds this land in the slow-query
        log (with their full span tree and plan).  ``0`` logs every
        query; ``None`` disables the slow-query log.
    slow_query_log_size
        Ring-buffer capacity of the slow-query log.
    trace_retention
        How many recent root spans the tracer keeps addressable by
        ``query_id`` (ring buffer; older traces are dropped).
    max_spans_per_trace
        Hard cap on spans recorded under one root — guards memory on
        pathological queries.  Excess spans are counted but not kept.
    latency_buckets
        Upper bounds (seconds) for every latency histogram.
    instrument_operators
        When True, per-operator row counters are forced on for planned
        statements (equivalent to ``EXPLAIN ANALYZE`` accounting on
        every query).  Costs a closure per row; default off.
    """

    enabled: bool = True
    slow_query_threshold_s: float | None = 0.25
    slow_query_log_size: int = 64
    trace_retention: int = 128
    max_spans_per_trace: int = 512
    latency_buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    instrument_operators: bool = False

    def __post_init__(self) -> None:
        if self.slow_query_threshold_s is not None \
                and self.slow_query_threshold_s < 0:
            raise ValueError("slow_query_threshold_s must be >= 0 or None")
        if self.slow_query_log_size < 1:
            raise ValueError("slow_query_log_size must be >= 1")
        if self.trace_retention < 1:
            raise ValueError("trace_retention must be >= 1")
        if self.max_spans_per_trace < 1:
            raise ValueError("max_spans_per_trace must be >= 1")
        buckets = tuple(float(b) for b in self.latency_buckets)
        if not buckets:
            raise ValueError("latency_buckets must not be empty")
        if any(b <= 0 for b in buckets):
            raise ValueError("latency buckets must be positive")
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("latency buckets must be strictly increasing")
        object.__setattr__(self, "latency_buckets", buckets)

    def replace(self, **changes) -> "TelemetryOptions":
        """A copy with *changes* applied (options are immutable)."""
        return dataclasses.replace(self, **changes)
