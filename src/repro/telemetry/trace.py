"""Per-query span trees with ``contextvars`` propagation.

A :class:`Span` is one timed region (name, attributes, wall/CPU time,
children).  The *current* span lives in a :class:`contextvars.ContextVar`
so nesting works naturally across generator-based streaming — the
context travels with whoever resumes the generator — and across worker
threads when the submitter ships a ``contextvars.copy_context()`` along
with the job (the federation executor and durability snapshot thread do
exactly that; see ``Tracer.attach``).

Root spans are registered in the tracer's ring buffer **at start**, not
at finish, so an open streaming query's trace is already retrievable by
``query_id`` while rows are still being drained.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar

#: The innermost open span for this context, or None outside any query.
_CURRENT: ContextVar = ContextVar("repro_telemetry_span", default=None)


class Span:
    """One timed, attributed node in a query's trace tree."""

    __slots__ = ("name", "attrs", "children", "wall_s", "cpu_s", "error",
                 "query_id", "_start_wall", "_start_cpu", "_root",
                 "_budget", "_dropped", "_span_count", "_lock")

    def __init__(self, name: str, attrs=None, *, root=None,
                 max_spans: int = 0) -> None:
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.children = []
        self.wall_s = None          # None while the span is open
        self.cpu_s = None
        self.error = None
        self.query_id = None        # set on root spans only
        self._start_wall = time.perf_counter()
        self._start_cpu = time.process_time()
        self._root = root if root is not None else self
        if root is None:            # this IS a root: owns the budget
            self._budget = max_spans
            self._dropped = 0
            self._span_count = 1
            self._lock = threading.Lock()
        else:
            self._budget = 0
            self._dropped = 0
            self._span_count = 0
            self._lock = None

    # -- tree building --------------------------------------------------

    def _adopt(self, child: "Span") -> bool:
        """Attach *child* under self, honouring the root's span budget.

        Returns False (and counts a drop) when the budget is exhausted;
        the child still times itself, it just isn't kept.
        """
        root = self._root
        if root._budget:
            with root._lock:
                if root._dropped or root._span_count >= root._budget:
                    root._dropped += 1
                    return False
                root._span_count += 1
                self.children.append(child)
                return True
        self.children.append(child)
        return True

    def finish(self, error=None) -> None:
        if self.wall_s is None:
            self.wall_s = time.perf_counter() - self._start_wall
            self.cpu_s = time.process_time() - self._start_cpu
        if error is not None and self.error is None:
            self.error = f"{type(error).__name__}: {error}"

    @property
    def open(self) -> bool:
        return self.wall_s is None

    @property
    def dropped_spans(self) -> int:
        return self._root._dropped

    # -- export ---------------------------------------------------------

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }
        if self.query_id is not None:
            out["query_id"] = self.query_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        if self.open:
            out["open"] = True
        if self._root is self and self._dropped:
            out["dropped_spans"] = self._dropped
        out["children"] = [c.to_dict() for c in self.children]
        return out

    def find(self, name: str):
        """Depth-first search for the first descendant named *name*."""
        for child in self.children:
            if child.name == name:
                return child
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def find_all(self, name: str) -> list:
        hits = []
        for child in self.children:
            if child.name == name:
                hits.append(child)
            hits.extend(child.find_all(name))
        return hits

    def format(self, indent: int = 0) -> str:
        """Human-readable tree rendering (for examples and debugging)."""
        wall = "open" if self.open else f"{self.wall_s * 1000:.3f} ms"
        attrs = ""
        if self.attrs:
            attrs = "  " + " ".join(
                f"{k}={v}" for k, v in sorted(self.attrs.items()))
        lines = ["  " * indent + f"{self.name}  [{wall}]{attrs}"]
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)


class Tracer:
    """Builds span trees and keeps recent roots addressable by query id."""

    def __init__(self, *, retention: int = 128,
                 max_spans: int = 512) -> None:
        self._retention = retention
        self._max_spans = max_spans
        self._traces = OrderedDict()        # query_id -> root Span
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    # -- context accessors ----------------------------------------------

    def current(self):
        """The innermost open span in this context, or None."""
        return _CURRENT.get()

    def trace(self, query_id: str):
        """The root span registered under *query_id*, or None."""
        with self._lock:
            return self._traces.get(query_id)

    def traces(self) -> list:
        """Recent root spans, oldest first."""
        with self._lock:
            return list(self._traces.values())

    # -- span creation --------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs):
        """A child span under the current context span.

        Outside any root span this is a no-op that yields None — so
        instrumented library code can open spans unconditionally once
        it has checked that telemetry is attached at all.
        """
        parent = _CURRENT.get()
        if parent is None:
            yield None
            return
        child = Span(name, attrs, root=parent._root)
        parent._adopt(child)
        token = _CURRENT.set(child)
        try:
            yield child
        except BaseException as exc:
            child.finish(error=exc)
            raise
        finally:
            _CURRENT.reset(token)
            child.finish()

    @contextmanager
    def query_span(self, name: str, **attrs):
        """A root span: registered immediately, finished on exit."""
        root = self.start_root(name, **attrs)
        token = _CURRENT.set(root)
        try:
            yield root
        except BaseException as exc:
            root.finish(error=exc)
            raise
        finally:
            _CURRENT.reset(token)
            root.finish()

    def start_root(self, name: str, **attrs) -> Span:
        """Open and register a root span (manual finish — streaming)."""
        root = Span(name, attrs, max_spans=self._max_spans)
        root.query_id = f"q-{next(self._ids):06d}"
        root.attrs.setdefault("query_id", root.query_id)
        with self._lock:
            self._traces[root.query_id] = root
            while len(self._traces) > self._retention:
                self._traces.popitem(last=False)
        return root

    @contextmanager
    def activate(self, span: Span):
        """Make an already-open *span* current in this context.

        Used with :meth:`start_root` for streaming queries: the cursor
        wrapper re-activates the root each time the consumer pulls a
        page, so spans opened during lazy execution still parent
        correctly.
        """
        token = _CURRENT.set(span)
        try:
            yield span
        finally:
            _CURRENT.reset(token)

    @contextmanager
    def attach(self, parent, name: str, **attrs):
        """A child span under an **explicit** parent, for code running
        where the context variable does not reach (worker threads whose
        submitter could not copy a context, the background snapshot
        thread).  No-op yielding None when *parent* is None."""
        if parent is None:
            yield None
            return
        child = Span(name, attrs, root=parent._root)
        parent._adopt(child)
        token = _CURRENT.set(child)
        try:
            yield child
        except BaseException as exc:
            child.finish(error=exc)
            raise
        finally:
            _CURRENT.reset(token)
            child.finish()

    def graft(self, parent, payload: dict):
        """Rebuild a remote span tree under *parent*.

        *payload* is a ``Span.to_dict()`` shipped across a process
        boundary (the cluster worker returns its slice of the trace in
        the RPC response); grafting it under the coordinator's RPC span
        keeps one query = one span tree even when the work crossed
        processes.  Honours the root's span budget like any locally
        opened span.  Returns the grafted top span, or None when
        *parent* is None / the payload is empty / the budget dropped it.
        """
        if parent is None or not payload:
            return None
        child = Span(payload.get("name", "remote"),
                     payload.get("attrs"), root=parent._root)
        child.wall_s = payload.get("wall_s")
        child.cpu_s = payload.get("cpu_s")
        child.error = payload.get("error")
        remote_id = payload.get("query_id")
        if remote_id is not None:
            child.attrs.setdefault("remote_query_id", remote_id)
        if not parent._adopt(child):
            return None
        for sub in payload.get("children", ()):
            self.graft(child, sub)
        return child

    def record_synthetic(self, name: str, wall_s: float, **attrs) -> None:
        """Attach a pre-measured child span under the current span.

        For work that happened before the root opened (e.g. parse time
        captured at ``prepare()`` long before ``execute()``)."""
        parent = _CURRENT.get()
        if parent is None:
            return
        child = Span(name, attrs, root=parent._root)
        child.wall_s = wall_s
        child.cpu_s = 0.0
        parent._adopt(child)
