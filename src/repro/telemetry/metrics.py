"""A small, lock-cheap metrics registry: counters, gauges, histograms.

Design constraints, in order:

1. **Cheap on the hot path.**  Recording into an already-created child
   is one short critical section on a per-child lock (counters/gauges)
   or a bisect + a few adds (histograms).  Label resolution for a
   repeated label set is one dict lookup under the family lock.
2. **Prometheus-shaped.**  Families have a name, help text and fixed
   label names; children are addressed by label values.  The registry
   renders both a JSON-friendly dict and the Prometheus text
   exposition format.
3. **No dependencies.**  Pure stdlib; histograms are bounded-bucket
   (cumulative counts per upper bound) with percentile estimates by
   linear interpolation inside the winning bucket, tightened by the
   observed min/max.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from .options import DEFAULT_LATENCY_BUCKETS

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or not set(name) <= _NAME_OK or name[0].isdigit():
        raise ValueError(f"invalid metric name: {name!r}")
    return name


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (pool occupancy, queue depth)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bounded-bucket histogram with cumulative counts and percentiles.

    ``buckets`` are the upper bounds; an implicit +Inf bucket catches
    the tail.  ``percentile(q)`` interpolates linearly within the
    winning bucket, clamped to the observed min/max so small sample
    counts do not report values nothing ever reached.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_min", "_max",
                 "_lock")

    def __init__(self, buckets=DEFAULT_LATENCY_BUCKETS) -> None:
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)   # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._min = None
        self._max = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self):
        return self._min

    @property
    def max(self):
        return self._max

    def percentile(self, q: float) -> float | None:
        """Estimated *q*-quantile (``q`` in [0, 1]), None when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return None
            counts = list(self._counts)
            lo_obs, hi_obs = self._min, self._max
        rank = q * total
        cum = 0
        for idx, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            prev_cum = cum
            cum += bucket_count
            if cum >= rank:
                lo = self.buckets[idx - 1] if idx > 0 else 0.0
                hi = self.buckets[idx] if idx < len(self.buckets) else hi_obs
                if hi is None or hi <= lo:
                    hi = lo
                frac = (rank - prev_cum) / bucket_count
                est = lo + (hi - lo) * frac
                return max(lo_obs, min(hi_obs, est))
        return hi_obs

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            out = {
                "count": self._count, "sum": self._sum,
                "min": self._min, "max": self._max,
            }
        cumulative, cum = [], 0
        for c in counts:
            cum += c
            cumulative.append(cum)
        out["buckets"] = {
            **{str(b): cumulative[i] for i, b in enumerate(self.buckets)},
            "+Inf": cumulative[-1],
        }
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            out[label] = self.percentile(q)
        return out


class _Family:
    """One named metric with fixed label names and per-value children."""

    __slots__ = ("name", "help", "kind", "label_names", "_children",
                 "_lock", "_factory")

    def __init__(self, name, help_text, kind, label_names, factory):
        self.name = _check_name(name)
        self.help = help_text
        self.kind = kind
        self.label_names = tuple(label_names)
        self._children = {}
        self._lock = threading.Lock()
        self._factory = factory

    def labels(self, *values):
        values = tuple(str(v) for v in values)
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label "
                f"value(s) {self.label_names}, got {len(values)}")
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.setdefault(values, self._factory())
        return child

    def children(self):
        with self._lock:
            return dict(self._children)


class MetricsRegistry:
    """Get-or-create registry of metric families.

    ``counter`` / ``gauge`` / ``histogram`` return the **family** when
    the metric is declared with label names, or the single unlabelled
    child directly when it is not — so hot paths hold a direct child
    reference and never re-resolve.
    """

    def __init__(self, *, default_buckets=DEFAULT_LATENCY_BUCKETS) -> None:
        self._families = {}
        self._lock = threading.Lock()
        self._default_buckets = tuple(default_buckets)

    def _get_or_create(self, name, help_text, kind, labels, factory):
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = _Family(name, help_text, kind, labels, factory)
                    self._families[name] = family
        if family.kind != kind or family.label_names != tuple(labels):
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} "
                f"with labels {family.label_names}")
        if not family.label_names:
            return family.labels()
        return family

    def counter(self, name, help_text="", labels=()):
        return self._get_or_create(name, help_text, "counter", labels, Counter)

    def gauge(self, name, help_text="", labels=()):
        return self._get_or_create(name, help_text, "gauge", labels, Gauge)

    def histogram(self, name, help_text="", labels=(), buckets=None):
        chosen = tuple(buckets) if buckets is not None \
            else self._default_buckets
        return self._get_or_create(
            name, help_text, "histogram", labels,
            lambda: Histogram(chosen))

    # -- export ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly snapshot of every family and child."""
        out = {}
        with self._lock:
            families = list(self._families.values())
        for family in sorted(families, key=lambda f: f.name):
            series = []
            for values, child in sorted(family.children().items()):
                labels = dict(zip(family.label_names, values))
                if family.kind == "histogram":
                    series.append({"labels": labels, **child.snapshot()})
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind, "help": family.help, "series": series,
            }
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines = []
        with self._lock:
            families = list(self._families.values())
        for family in sorted(families, key=lambda f: f.name):
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in sorted(family.children().items()):
                base = _format_labels(family.label_names, values)
                if family.kind == "histogram":
                    snap = child.snapshot()
                    for bound, cum in snap["buckets"].items():
                        extra = _format_labels(
                            family.label_names + ("le",), values + (bound,))
                        lines.append(f"{family.name}_bucket{extra} {cum}")
                    lines.append(
                        f"{family.name}_sum{base} {_fmt(snap['sum'])}")
                    lines.append(f"{family.name}_count{base} {snap['count']}")
                else:
                    lines.append(f"{family.name}{base} {_fmt(child.value)}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    return repr(int(value)) if float(value).is_integer() else repr(value)


def _format_labels(names, values) -> str:
    if not names:
        return ""
    parts = []
    for name, value in zip(names, values):
        escaped = str(value).replace("\\", r"\\").replace('"', r"\"") \
                            .replace("\n", r"\n")
        parts.append(f'{name}="{escaped}"')
    return "{" + ",".join(parts) + "}"
