"""Ring-buffer slow-query log: full span tree + plan for slow queries."""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field


@dataclass
class SlowQueryEntry:
    """One logged slow query: when, who, what, how slow, and why."""

    query_id: str
    statement: str | None
    user: str | None
    wall_s: float
    recorded_at: float = field(default_factory=time.time)
    trace: dict | None = None       # root span tree (Span.to_dict())
    plan: str | None = None         # formatted plan, when one existed
    rows: int | None = None

    def to_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "statement": self.statement,
            "user": self.user,
            "wall_s": self.wall_s,
            "recorded_at": self.recorded_at,
            "rows": self.rows,
            "plan": self.plan,
            "trace": self.trace,
        }


class SlowQueryLog:
    """Bounded, thread-safe log of the slowest-path evidence.

    ``threshold_s`` of None disables recording entirely; 0 records
    every query (useful in tests and when diagnosing a live system).
    """

    def __init__(self, *, threshold_s: float | None = 0.25,
                 size: int = 64) -> None:
        self.threshold_s = threshold_s
        self._entries = deque(maxlen=size)
        self._lock = threading.Lock()
        self.recorded = 0

    def should_record(self, wall_s: float) -> bool:
        return self.threshold_s is not None and wall_s >= self.threshold_s

    def record(self, entry: SlowQueryEntry) -> None:
        with self._lock:
            self._entries.append(entry)
            self.recorded += 1

    def entries(self) -> list[SlowQueryEntry]:
        """Newest first."""
        with self._lock:
            return list(reversed(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def to_dict(self) -> dict:
        return {
            "threshold_s": self.threshold_s,
            "recorded": self.recorded,
            "entries": [e.to_dict() for e in self.entries()],
        }
