"""Legacy setup shim: the runtime image has no `wheel`, so editable
installs must go through `setup.py develop` (pip --no-use-pep517)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.6.0",
    description=("Reproduction of 'Contextually-Enriched Querying of "
                 "Integrated Data Sources' (ICDE 2018)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
